package opgraph

import (
	"fmt"
)

// FuseElementwise is an XLA-style operation-fusion pass (Sec. IV-D /
// Sec. VI-A2): chains of adjacent element-wise operations are merged into
// single fused kernels. Fusion removes the intermediate tensors that
// memory-bound ops would otherwise write and re-read, so the fused kernel's
// memory traffic is the chain's total scaled by memSavings in (0, 1] —
// e.g. 1/3.43 reproduces the paper's measured element-wise reduction on the
// Speech model.
//
// Only linear chains are fused (each op consumed solely by the next), which
// mirrors XLA's rule-based fusion of producer/consumer pairs; the pass never
// touches compute-bound, embedding or input ops.
func FuseElementwise(g *Graph, memSavings float64) (*Graph, error) {
	if g == nil {
		return nil, fmt.Errorf("opgraph: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if memSavings <= 0 || memSavings > 1 {
		return nil, fmt.Errorf("opgraph: memSavings must be in (0,1], got %v", memSavings)
	}

	// consumers[i] lists ops that depend on op i.
	consumers := make([][]int, len(g.Ops))
	for i, op := range g.Ops {
		for _, d := range op.Deps {
			consumers[d] = append(consumers[d], i)
		}
	}

	out := &Graph{Model: g.Model + "+fused"}
	// newIndex maps old op index -> new op index (or the fused op holding it).
	newIndex := make([]int, len(g.Ops))
	fusedInto := make([]bool, len(g.Ops))

	for i := 0; i < len(g.Ops); i++ {
		if fusedInto[i] {
			continue
		}
		op := g.Ops[i]
		// Grow a fusion chain: op is element-wise and its sole consumer is
		// an element-wise op depending only on it.
		chainEnd := i
		var chainMem float64
		if op.Kind == KindElementwise {
			chainMem = op.MemBytes
			for {
				cs := consumers[chainEnd]
				if len(cs) != 1 {
					break
				}
				next := g.Ops[cs[0]]
				if next.Kind != KindElementwise || len(next.Deps) != 1 {
					break
				}
				chainEnd = cs[0]
				chainMem += next.MemBytes
				fusedInto[chainEnd] = true
			}
		}
		mapped := Op{Name: op.Name, Kind: op.Kind,
			FLOPs: op.FLOPs, MemBytes: op.MemBytes, InputBytes: op.InputBytes}
		if chainEnd != i {
			mapped.Name = fmt.Sprintf("%s.fused", op.Name)
			mapped.MemBytes = chainMem * memSavings
		}
		for _, d := range op.Deps {
			mapped.Deps = append(mapped.Deps, newIndex[d])
		}
		out.Ops = append(out.Ops, mapped)
		ni := len(out.Ops) - 1
		newIndex[i] = ni
		// Every op absorbed by the chain maps to the fused kernel.
		for j := i; j <= chainEnd && chainEnd != i; j++ {
			if fusedInto[j] || j == i {
				newIndex[j] = ni
			}
		}
		// Walk fused members explicitly (chain indices are not contiguous in
		// general; re-derive via consumers).
		cur := i
		for cur != chainEnd {
			cs := consumers[cur]
			cur = cs[0]
			newIndex[cur] = ni
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("opgraph: fusion produced invalid graph: %w", err)
	}
	return out, nil
}

// CountKind returns the number of ops of a kind.
func (g *Graph) CountKind(k OpKind) int {
	n := 0
	for _, op := range g.Ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}
