// Package opgraph builds synthetic operation-level graphs for the six
// case-study model families. The graphs stand in for the TensorFlow
// computation graphs the paper profiles with tf.RunMetadata: each operation
// carries the resource demands (FLOPs for compute-bound ops, memory traffic
// for element-wise ops, host-to-device bytes for input ops) that the
// profiling substrate (internal/profile) turns into kernel records and the
// feature-extraction pipeline distills back into the workload schema.
//
// Graphs are constructed so that their totals match the Table V rows
// exactly, making the Fig. 4 pipeline testable end to end: build -> profile
// -> extract must recover the published features.
package opgraph

import (
	"fmt"

	"repro/internal/workload"
)

// OpKind classifies an operation the way the paper's framework does:
// compute-bound (MatMul/Conv), memory-bound (element-wise), embedding lookup
// (memory-bound, sparse), or input-pipeline.
type OpKind int

const (
	// KindMatMul is a dense compute-bound op (MatMul, attention projection).
	KindMatMul OpKind = iota
	// KindConv is a convolution (compute-bound).
	KindConv
	// KindElementwise is a memory-bound op (activation, normalization, add).
	KindElementwise
	// KindEmbeddingLookup is a memory-bound sparse gather.
	KindEmbeddingLookup
	// KindInput is the host-to-device input-data feed.
	KindInput
)

var kindNames = map[OpKind]string{
	KindMatMul:          "MatMul",
	KindConv:            "Conv",
	KindElementwise:     "Elementwise",
	KindEmbeddingLookup: "EmbeddingLookup",
	KindInput:           "Input",
}

// String names the kind.
func (k OpKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// ComputeBound reports whether the kind is measured in FLOPs (true) or
// memory bytes (false).
func (k OpKind) ComputeBound() bool { return k == KindMatMul || k == KindConv }

// Op is one node of the graph.
type Op struct {
	Name string
	Kind OpKind
	// FLOPs is the compute demand (compute-bound kinds only).
	FLOPs float64
	// MemBytes is the device-memory traffic (memory-bound kinds only).
	MemBytes float64
	// InputBytes is host-to-device volume (KindInput only).
	InputBytes float64
	// Deps lists indices of ops that must run first.
	Deps []int
}

// Graph is a model's operation graph for one training step.
type Graph struct {
	Model string
	Ops   []Op
}

// Totals sums the graph's resource demands.
func (g *Graph) Totals() (flops, memBytes, inputBytes float64) {
	for _, op := range g.Ops {
		flops += op.FLOPs
		memBytes += op.MemBytes
		inputBytes += op.InputBytes
	}
	return flops, memBytes, inputBytes
}

// Validate checks structural sanity: demands attached to the right kinds and
// dependency indices in range and acyclic (deps must point backwards).
func (g *Graph) Validate() error {
	if len(g.Ops) == 0 {
		return fmt.Errorf("opgraph: %s has no ops", g.Model)
	}
	for i, op := range g.Ops {
		if op.FLOPs < 0 || op.MemBytes < 0 || op.InputBytes < 0 {
			return fmt.Errorf("opgraph: %s op %d has negative demand", g.Model, i)
		}
		if op.FLOPs > 0 && !op.Kind.ComputeBound() {
			return fmt.Errorf("opgraph: %s op %d (%v) carries FLOPs", g.Model, i, op.Kind)
		}
		if op.MemBytes > 0 && (op.Kind.ComputeBound() || op.Kind == KindInput) {
			return fmt.Errorf("opgraph: %s op %d (%v) carries memory traffic", g.Model, i, op.Kind)
		}
		if op.InputBytes > 0 && op.Kind != KindInput {
			return fmt.Errorf("opgraph: %s op %d (%v) carries input bytes", g.Model, i, op.Kind)
		}
		for _, d := range op.Deps {
			if d < 0 || d >= i {
				return fmt.Errorf("opgraph: %s op %d dep %d not strictly earlier", g.Model, i, d)
			}
		}
	}
	return nil
}

// family describes how a model's totals are laid out into ops.
type family struct {
	// computeKind is the dominant compute-bound op kind.
	computeKind OpKind
	// layers is the number of repeated blocks.
	layers int
	// hasEmbedding adds embedding-lookup ops fed a share of memory traffic.
	hasEmbedding bool
}

var families = map[string]family{
	"ResNet50":        {computeKind: KindConv, layers: 16},
	"NMT":             {computeKind: KindMatMul, layers: 12, hasEmbedding: true},
	"BERT":            {computeKind: KindMatMul, layers: 12, hasEmbedding: true},
	"Speech":          {computeKind: KindConv, layers: 8},
	"Multi-Interests": {computeKind: KindMatMul, layers: 6, hasEmbedding: true},
	"GCN":             {computeKind: KindMatMul, layers: 4, hasEmbedding: true},
}

// Build constructs the operation graph for one zoo model. The layer
// structure is schematic (blocks of compute op + element-wise ops, plus an
// input op and optional embedding lookups); the per-op demands are chosen so
// the graph totals equal the Table V row.
func Build(model string) (*Graph, error) {
	fam, ok := families[model]
	if !ok {
		return nil, fmt.Errorf("opgraph: unknown model %q", model)
	}
	cs, err := workload.Lookup(model)
	if err != nil {
		return nil, err
	}
	f := cs.Features

	g := &Graph{Model: model}
	// Input pipeline op.
	g.Ops = append(g.Ops, Op{Name: "input", Kind: KindInput, InputBytes: f.InputBytes})

	memBudget := f.MemAccessBytes
	var embShare float64
	if fam.hasEmbedding {
		// A fifth of the memory traffic goes through embedding gathers.
		embShare = 0.2
		g.Ops = append(g.Ops, Op{
			Name: "embedding_lookup", Kind: KindEmbeddingLookup,
			MemBytes: memBudget * embShare, Deps: []int{0},
		})
	}
	remainingMem := memBudget * (1 - embShare)

	// Layer blocks: compute op followed by two element-wise ops, weighted so
	// early layers are heavier (a crude pyramid like real CNN/transformer
	// profiles). Weights w_i = layers - i, normalized.
	var wSum float64
	for i := 0; i < fam.layers; i++ {
		wSum += float64(fam.layers - i)
	}
	prev := len(g.Ops) - 1
	for i := 0; i < fam.layers; i++ {
		w := float64(fam.layers-i) / wSum
		compute := Op{
			Name:  fmt.Sprintf("layer%02d/%s", i, fam.computeKind),
			Kind:  fam.computeKind,
			FLOPs: f.FLOPs * w,
			Deps:  []int{prev},
		}
		g.Ops = append(g.Ops, compute)
		ci := len(g.Ops) - 1
		ew1 := Op{
			Name: fmt.Sprintf("layer%02d/norm", i), Kind: KindElementwise,
			MemBytes: remainingMem * w * 0.6, Deps: []int{ci},
		}
		g.Ops = append(g.Ops, ew1)
		ew2 := Op{
			Name: fmt.Sprintf("layer%02d/act", i), Kind: KindElementwise,
			MemBytes: remainingMem * w * 0.4, Deps: []int{len(g.Ops) - 1},
		}
		g.Ops = append(g.Ops, ew2)
		prev = len(g.Ops) - 1
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Models lists the model names Build accepts.
func Models() []string { return workload.ZooNames() }
