package opgraph

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestKindString(t *testing.T) {
	if KindMatMul.String() != "MatMul" || KindElementwise.String() != "Elementwise" {
		t.Error("kind names wrong")
	}
	if OpKind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestComputeBound(t *testing.T) {
	if !KindMatMul.ComputeBound() || !KindConv.ComputeBound() {
		t.Error("MatMul/Conv are compute-bound")
	}
	if KindElementwise.ComputeBound() || KindEmbeddingLookup.ComputeBound() || KindInput.ComputeBound() {
		t.Error("elementwise/embedding/input are not compute-bound")
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nope"); err == nil {
		t.Error("expected error for unknown model")
	}
}

// Graph totals must reproduce the Table V rows exactly.
func TestBuildTotalsMatchTableV(t *testing.T) {
	for _, name := range Models() {
		g, err := Build(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cs, err := workload.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		flops, mem, input := g.Totals()
		rel := func(got, want float64) float64 {
			if want == 0 {
				return math.Abs(got)
			}
			return math.Abs(got-want) / want
		}
		if rel(flops, cs.Features.FLOPs) > 1e-9 {
			t.Errorf("%s FLOPs = %v, want %v", name, flops, cs.Features.FLOPs)
		}
		if rel(mem, cs.Features.MemAccessBytes) > 1e-9 {
			t.Errorf("%s mem = %v, want %v", name, mem, cs.Features.MemAccessBytes)
		}
		if rel(input, cs.Features.InputBytes) > 1e-9 {
			t.Errorf("%s input = %v, want %v", name, input, cs.Features.InputBytes)
		}
	}
}

func TestBuildStructure(t *testing.T) {
	g, err := Build("ResNet50")
	if err != nil {
		t.Fatal(err)
	}
	if g.Ops[0].Kind != KindInput {
		t.Error("first op must be the input pipeline")
	}
	// ResNet50 has no embedding.
	for _, op := range g.Ops {
		if op.Kind == KindEmbeddingLookup {
			t.Error("ResNet50 should have no embedding lookups")
		}
		if op.Kind == KindMatMul {
			t.Error("ResNet50 compute ops should be convolutions")
		}
	}
	// NMT does have embedding lookups.
	nmt, err := Build("NMT")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, op := range nmt.Ops {
		if op.Kind == KindEmbeddingLookup {
			found = true
		}
	}
	if !found {
		t.Error("NMT should include embedding lookups")
	}
}

func TestValidate(t *testing.T) {
	empty := &Graph{Model: "x"}
	if err := empty.Validate(); err == nil {
		t.Error("expected error for empty graph")
	}
	bad := &Graph{Model: "x", Ops: []Op{
		{Name: "a", Kind: KindElementwise, FLOPs: 5},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for FLOPs on memory-bound op")
	}
	bad = &Graph{Model: "x", Ops: []Op{
		{Name: "a", Kind: KindConv, MemBytes: 5},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for memory traffic on compute op")
	}
	bad = &Graph{Model: "x", Ops: []Op{
		{Name: "a", Kind: KindConv, InputBytes: 5},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for input bytes on non-input op")
	}
	bad = &Graph{Model: "x", Ops: []Op{
		{Name: "a", Kind: KindConv, FLOPs: -1},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for negative demand")
	}
	bad = &Graph{Model: "x", Ops: []Op{
		{Name: "a", Kind: KindConv, Deps: []int{0}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for self/forward dependency")
	}
}

func TestModelsListsZoo(t *testing.T) {
	if len(Models()) != 6 {
		t.Errorf("Models() lists %d, want 6", len(Models()))
	}
	for _, name := range Models() {
		if _, err := Build(name); err != nil {
			t.Errorf("Build(%s): %v", name, err)
		}
	}
}
