package opgraph

import (
	"math"
	"testing"
)

func TestFuseElementwiseValidation(t *testing.T) {
	if _, err := FuseElementwise(nil, 0.5); err == nil {
		t.Error("expected error for nil graph")
	}
	g, err := Build("ResNet50")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FuseElementwise(g, 0); err == nil {
		t.Error("expected error for zero savings")
	}
	if _, err := FuseElementwise(g, 1.5); err == nil {
		t.Error("expected error for savings > 1")
	}
	bad := &Graph{Model: "x"}
	if _, err := FuseElementwise(bad, 0.5); err == nil {
		t.Error("expected error for invalid graph")
	}
}

func TestFuseElementwiseMergesChains(t *testing.T) {
	g, err := Build("ResNet50")
	if err != nil {
		t.Fatal(err)
	}
	fused, err := FuseElementwise(g, 1.0/3.43)
	if err != nil {
		t.Fatal(err)
	}
	// Each layer's norm+act pair fuses: element-wise op count halves.
	before := g.CountKind(KindElementwise)
	after := fused.CountKind(KindElementwise)
	if after >= before {
		t.Errorf("fusion did not reduce element-wise ops: %d -> %d", before, after)
	}
	if after != before/2 {
		t.Errorf("expected norm+act pairs to fuse: %d -> %d", before, after)
	}
	// Compute-bound ops untouched.
	if fused.CountKind(KindConv) != g.CountKind(KindConv) {
		t.Error("fusion must not touch conv ops")
	}
	// FLOPs and input bytes preserved; memory traffic reduced by the ratio.
	f0, m0, i0 := g.Totals()
	f1, m1, i1 := fused.Totals()
	if f1 != f0 || i1 != i0 {
		t.Error("fusion must preserve FLOPs and input bytes")
	}
	wantMem := m0 / 3.43
	if math.Abs(m1-wantMem)/wantMem > 1e-9 {
		t.Errorf("fused memory = %v, want %v (1/3.43)", m1, wantMem)
	}
}

// Fusion with memSavings = 1 preserves totals exactly (pure restructuring).
func TestFuseElementwiseIdentitySavings(t *testing.T) {
	g, err := Build("BERT")
	if err != nil {
		t.Fatal(err)
	}
	fused, err := FuseElementwise(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	f0, m0, i0 := g.Totals()
	f1, m1, i1 := fused.Totals()
	if f1 != f0 || i1 != i0 || math.Abs(m1-m0)/m0 > 1e-12 {
		t.Errorf("identity fusion changed totals: (%v,%v,%v) -> (%v,%v,%v)",
			f0, m0, i0, f1, m1, i1)
	}
}

// A branchy graph (one producer, two consumers) must not fuse across the
// branch.
func TestFuseElementwiseRespectsBranches(t *testing.T) {
	g := &Graph{Model: "branchy", Ops: []Op{
		{Name: "in", Kind: KindInput, InputBytes: 10},
		{Name: "a", Kind: KindElementwise, MemBytes: 100, Deps: []int{0}},
		{Name: "b", Kind: KindElementwise, MemBytes: 100, Deps: []int{1}},
		{Name: "c", Kind: KindElementwise, MemBytes: 100, Deps: []int{1}},
	}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	fused, err := FuseElementwise(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 'a' has two consumers: nothing fuses.
	if fused.CountKind(KindElementwise) != 3 {
		t.Errorf("branch fused incorrectly: %d element-wise ops, want 3", fused.CountKind(KindElementwise))
	}
	_, m, _ := fused.Totals()
	if m != 300 {
		t.Errorf("branchy memory = %v, want 300 (unchanged)", m)
	}
}

// End-to-end: fusing the Speech graph and re-profiling reproduces the XLA
// speedup the analytical optimize model predicts.
func TestFusionMatchesOptimizeModel(t *testing.T) {
	g, err := Build("Speech")
	if err != nil {
		t.Fatal(err)
	}
	fused, err := FuseElementwise(g, 1.0/3.43)
	if err != nil {
		t.Fatal(err)
	}
	_, m0, _ := g.Totals()
	_, m1, _ := fused.Totals()
	// The memory-traffic ratio equals the component speedup the optimize
	// package models for XLA.
	if ratio := m0 / m1; math.Abs(ratio-3.43) > 1e-9 {
		t.Errorf("memory ratio = %v, want 3.43", ratio)
	}
}
