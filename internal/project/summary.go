package project

import (
	"fmt"

	"repro/internal/binenc"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ProjectTimed maps one PS/Worker workload to the target and evaluates only
// the projected side, reusing an already-computed breakdown of the original
// — the streamed-fold path, where the pipeline has just evaluated the
// original job and handing the breakdown over halves the projection's
// evaluation cost.
func (p *Projector) ProjectTimed(f workload.Features, origT core.Times, target Target) (Result, error) {
	mapped, err := Map(f, target, p.cfg.GPUsPerServer)
	if err != nil {
		return Result{}, err
	}
	projT, err := p.ev.Breakdown(mapped)
	if err != nil {
		return Result{}, err
	}
	return assembleResult(f, mapped, origT, projT)
}

// speedupSketchEdges are the shared log-spaced bin edges of every speedup
// sketch, so per-shard accumulators always merge. The range covers 1/1000x
// to 1000x, far beyond the paper's 21x communication bound (Eq. 3).
var speedupSketchEdges = func() []float64 {
	edges, err := stats.LogGrid(1e-3, 1e3, 241)
	if err != nil {
		panic(err)
	}
	return edges
}()

// SummaryAccumulator folds projection results into the Fig. 9 aggregates —
// the not-sped fractions, mean speedups, and fixed-memory speedup
// distribution sketches — in O(1) memory per result. Per-shard accumulators
// Merge deterministically, and snapshots round-trip bit-exactly, so the
// projection summary participates in the same multi-process fold as the
// breakdown aggregates.
//
// The zero value is usable: Add and Merge initialize it lazily.
type SummaryAccumulator struct {
	n              int
	notNode, notTp int
	sumNode, sumTp float64

	nodeSketch, tpSketch *stats.Sketch
}

// init backfills the sketches so the zero value works.
func (a *SummaryAccumulator) init() {
	if a.nodeSketch != nil {
		return
	}
	ns, err := stats.NewSketch(speedupSketchEdges)
	if err != nil {
		panic(err) // edges are a package constant; cannot fail
	}
	ts, err := stats.NewSketch(speedupSketchEdges)
	if err != nil {
		panic(err)
	}
	a.nodeSketch, a.tpSketch = ns, ts
}

// Add folds one projection result into the aggregates.
func (a *SummaryAccumulator) Add(r Result) {
	a.init()
	a.n++
	if r.NodeSpeedup <= 1 {
		a.notNode++
	}
	if r.ThroughputSpeedup <= 1 {
		a.notTp++
	}
	a.sumNode += r.NodeSpeedup
	a.sumTp += r.ThroughputSpeedup
	a.nodeSketch.Add(r.NodeSpeedup)
	a.tpSketch.Add(r.ThroughputSpeedup)
}

// Merge folds another accumulator into the receiver (the per-shard
// reduction step).
func (a *SummaryAccumulator) Merge(b *SummaryAccumulator) error {
	if b == nil || b.n == 0 {
		return nil
	}
	a.init()
	b.init()
	a.n += b.n
	a.notNode += b.notNode
	a.notTp += b.notTp
	a.sumNode += b.sumNode
	a.sumTp += b.sumTp
	if err := a.nodeSketch.Merge(b.nodeSketch); err != nil {
		return fmt.Errorf("project: merge node-speedup sketch: %w", err)
	}
	if err := a.tpSketch.Merge(b.tpSketch); err != nil {
		return fmt.Errorf("project: merge throughput-speedup sketch: %w", err)
	}
	return nil
}

// N reports the number of projection results folded in.
func (a *SummaryAccumulator) N() int { return a.n }

// Summary assembles the Fig. 9 aggregates.
func (a *SummaryAccumulator) Summary() (Summary, error) {
	if a.n == 0 {
		return Summary{}, fmt.Errorf("project: no results to summarize")
	}
	return Summary{
		N:                     a.n,
		FracNodeNotSped:       float64(a.notNode) / float64(a.n),
		FracThroughputNotSped: float64(a.notTp) / float64(a.n),
		MeanNodeSpeedup:       a.sumNode / float64(a.n),
		MeanThroughputSpeedup: a.sumTp / float64(a.n),
	}, nil
}

// NodeSpeedups returns the distribution sketch of per-cNode step speedups
// (the "Single cNode speedup" CDF of Fig. 9a, sketched).
func (a *SummaryAccumulator) NodeSpeedups() *stats.Sketch {
	a.init()
	return a.nodeSketch
}

// ThroughputSpeedups returns the distribution sketch of throughput speedups
// (the "Throughput speedup" CDF of Fig. 9a, sketched).
func (a *SummaryAccumulator) ThroughputSpeedups() *stats.Sketch {
	a.init()
	return a.tpSketch
}

// summaryAccVersion tags the SummaryAccumulator snapshot layout.
const summaryAccVersion = 1

// MarshalBinary encodes the accumulator as a versioned binary snapshot.
// Identical state always yields identical bytes.
func (a *SummaryAccumulator) MarshalBinary() ([]byte, error) {
	a.init()
	w := binenc.NewWriter(64)
	w.U8(summaryAccVersion)
	w.Int(a.n)
	w.Int(a.notNode)
	w.Int(a.notTp)
	w.F64(a.sumNode)
	w.F64(a.sumTp)
	for _, s := range []*stats.Sketch{a.nodeSketch, a.tpSketch} {
		raw, err := s.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.Raw(raw)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a MarshalBinary snapshot, replacing the receiver.
func (a *SummaryAccumulator) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != summaryAccVersion {
		return fmt.Errorf("project: summary snapshot version %d, want %d", v, summaryAccVersion)
	}
	var b SummaryAccumulator
	b.n = int(r.Uvarint())
	b.notNode = int(r.Uvarint())
	b.notTp = int(r.Uvarint())
	b.sumNode = r.F64()
	b.sumTp = r.F64()
	nodeRaw := r.Raw()
	tpRaw := r.Raw()
	if err := r.Err(); err != nil {
		return fmt.Errorf("project: summary snapshot: %w", err)
	}
	b.nodeSketch = new(stats.Sketch)
	if err := b.nodeSketch.UnmarshalBinary(nodeRaw); err != nil {
		return err
	}
	b.tpSketch = new(stats.Sketch)
	if err := b.tpSketch.UnmarshalBinary(tpRaw); err != nil {
		return err
	}
	*a = b
	return nil
}
