// Package project implements the architecture-projection study of
// Sec. III-C1: estimating how PS/Worker workloads would perform if ported to
// the AllReduce-Local or AllReduce-Cluster architectures.
//
// Mapping rules follow the paper: AllReduce-Local caps the job at one
// server's GPUs (cNodes' = min(cNodes, 8)), AllReduce-Cluster keeps the
// replica count. The per-step weight volume Sw is preserved across the
// projection (only the medium changes), which is what makes Eq. 3's 21x
// bound exact for communication-bound jobs.
package project

import (
	"context"
	"fmt"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/workload"
)

// Target selects the projection destination architecture.
type Target int

const (
	// ToAllReduceLocal ports the job onto a single NVLink server.
	ToAllReduceLocal Target = iota
	// ToAllReduceCluster ports the job onto AllReduce across servers.
	ToAllReduceCluster
)

// String names the target.
func (t Target) String() string {
	switch t {
	case ToAllReduceLocal:
		return "AllReduce-Local"
	case ToAllReduceCluster:
		return "AllReduce-Cluster"
	default:
		return fmt.Sprintf("Target(%d)", int(t))
	}
}

// Map rewrites a PS/Worker workload's features for the target architecture.
// Only PS/Worker jobs are mappable (the paper's study). The weight-traffic
// volume is preserved; the class and replica count change.
func Map(f workload.Features, target Target, gpusPerServer int) (workload.Features, error) {
	if err := f.Validate(); err != nil {
		return workload.Features{}, err
	}
	if f.Class != workload.PSWorker {
		return workload.Features{}, fmt.Errorf(
			"project: only PS/Worker workloads are projected, got %v", f.Class)
	}
	if gpusPerServer <= 0 {
		return workload.Features{}, fmt.Errorf(
			"project: gpusPerServer must be positive, got %d", gpusPerServer)
	}
	out := f
	switch target {
	case ToAllReduceLocal:
		out.Class = workload.AllReduceLocal
		if out.CNodes > gpusPerServer {
			out.CNodes = gpusPerServer
		}
	case ToAllReduceCluster:
		out.Class = workload.AllReduceCluster
	default:
		return workload.Features{}, fmt.Errorf("project: unknown target %v", target)
	}
	return out, nil
}

// Result reports the outcome of projecting one workload.
type Result struct {
	// Original and Projected are the feature records before/after mapping.
	Original, Projected workload.Features
	// NodeSpeedup is Ttotal(original) / Ttotal(projected): per-cNode step
	// speedup ("Single cNode speedup" series in Fig. 9a).
	NodeSpeedup float64
	// ThroughputSpeedup is throughput(projected) / throughput(original)
	// under Eq. 2, accounting for the possible cNode reduction
	// ("Throughput speedup" series in Fig. 9a).
	ThroughputSpeedup float64
	// OriginalTimes and ProjectedTimes carry the breakdowns for the
	// bottleneck-shift analysis (Fig. 10).
	OriginalTimes, ProjectedTimes core.Times
}

// Projector evaluates projections under one evaluation backend. The
// configuration must include NVLink (the projection destinations are NVLink
// architectures).
type Projector struct {
	// Model is the analytical model when the Projector was built via New;
	// nil when built over a generic evaluator via NewWithEvaluator.
	//
	// Deprecated: use the evaluator-based construction; Model is retained
	// for callers of the legacy New path.
	Model *core.Model

	ev  backend.Evaluator
	cfg hw.Config
}

// New returns a Projector over the analytical model.
func New(m *core.Model) (*Projector, error) {
	if m == nil {
		return nil, fmt.Errorf("project: nil model")
	}
	p, err := NewWithEvaluator(m, m.Config)
	if err != nil {
		return nil, err
	}
	p.Model = m
	return p, nil
}

// NewWithEvaluator returns a Projector over any per-job evaluator (an
// Engine backend, the analytical model, ...) under the given configuration.
func NewWithEvaluator(ev backend.Evaluator, cfg hw.Config) (*Projector, error) {
	if ev == nil {
		return nil, fmt.Errorf("project: nil evaluator")
	}
	if !cfg.HasNVLink {
		return nil, fmt.Errorf("project: projection target requires NVLink in the configuration")
	}
	return &Projector{ev: ev, cfg: cfg}, nil
}

// NewFromBackend returns a Projector over a registered backend, enforcing
// its Projectable capability (breakdowns comparable across the
// PS -> AllReduce mapping).
func NewFromBackend(b backend.Backend) (*Projector, error) {
	if b == nil {
		return nil, fmt.Errorf("project: nil backend")
	}
	if !b.Capabilities().Projectable {
		return nil, fmt.Errorf("project: backend %q does not support projections", b.Name())
	}
	return NewWithEvaluator(b, b.Spec().Config)
}

// Project maps one PS/Worker workload to the target and evaluates both
// sides.
func (p *Projector) Project(f workload.Features, target Target) (Result, error) {
	mapped, err := Map(f, target, p.cfg.GPUsPerServer)
	if err != nil {
		return Result{}, err
	}
	origT, err := p.ev.Breakdown(f)
	if err != nil {
		return Result{}, err
	}
	projT, err := p.ev.Breakdown(mapped)
	if err != nil {
		return Result{}, err
	}
	return assembleResult(f, mapped, origT, projT)
}

// assembleResult derives the speedup figures from the two evaluated sides of
// a projection (shared by the serial and batch paths).
func assembleResult(f, mapped workload.Features, origT, projT core.Times) (Result, error) {
	origTotal, projTotal := origT.Total(), projT.Total()
	if origTotal <= 0 || projTotal <= 0 {
		return Result{}, fmt.Errorf("project: degenerate step time for %q", f.Name)
	}
	r := Result{
		Original: f, Projected: mapped,
		OriginalTimes: origT, ProjectedTimes: projT,
		NodeSpeedup: origTotal / projTotal,
	}
	// Eq. 2 on both sides; batch size cancels.
	origTp := float64(f.CNodes) / origTotal
	projTp := float64(mapped.CNodes) / projTotal
	r.ThroughputSpeedup = projTp / origTp
	return r, nil
}

// ProjectAll maps every PS/Worker workload in the list; non-PS jobs are
// skipped. The returned slice preserves input order of the projected jobs.
func (p *Projector) ProjectAll(fs []workload.Features, target Target) ([]Result, error) {
	out := make([]Result, 0, len(fs))
	for _, f := range fs {
		if f.Class != workload.PSWorker {
			continue
		}
		r, err := p.Project(f, target)
		if err != nil {
			return nil, fmt.Errorf("project: job %q: %w", f.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ProjectBatch is ProjectAll over a bounded worker pool: every PS/Worker
// workload in the list is projected concurrently (parallelism <= 1 falls
// back to the serial path). Results preserve the input order of the
// projected jobs; the first error or context cancellation stops the batch.
func (p *Projector) ProjectBatch(ctx context.Context, fs []workload.Features, target Target, parallelism int) ([]Result, error) {
	ps := make([]workload.Features, 0, len(fs))
	for _, f := range fs {
		if f.Class == workload.PSWorker {
			ps = append(ps, f)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if parallelism <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return p.ProjectAll(ps, target)
	}
	// Evaluate both sides of every projection through the shared pool, then
	// assemble results serially.
	mapped := make([]workload.Features, len(ps))
	for i, f := range ps {
		m, err := Map(f, target, p.cfg.GPUsPerServer)
		if err != nil {
			return nil, fmt.Errorf("project: job %q: %w", f.Name, err)
		}
		mapped[i] = m
	}
	both := make([]workload.Features, 0, 2*len(ps))
	both = append(both, ps...)
	both = append(both, mapped...)
	times, err := backend.EvaluateBatch(ctx, p.ev, both, parallelism)
	if err != nil {
		return nil, fmt.Errorf("project: %w", err)
	}
	out := make([]Result, len(ps))
	for i, f := range ps {
		r, err := assembleResult(f, mapped[i], times[i], times[len(ps)+i])
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// Summary aggregates a projection run the way Fig. 9 reports it.
type Summary struct {
	// N is the number of projected jobs.
	N int
	// FracNodeNotSped is the fraction with NodeSpeedup <= 1 (the 22.6%
	// annotation in Fig. 9a).
	FracNodeNotSped float64
	// FracThroughputNotSped is the fraction with ThroughputSpeedup <= 1
	// (the 40.2% annotation; its complement is the "60% can be improved"
	// headline).
	FracThroughputNotSped float64
	// MeanNodeSpeedup and MeanThroughputSpeedup are arithmetic means.
	MeanNodeSpeedup, MeanThroughputSpeedup float64
}

// Summarize computes the Fig. 9 aggregates over projection results. It is
// the materialized-slice entry to the same streaming SummaryAccumulator the
// sink pipeline folds, so both paths produce identical numbers.
func Summarize(rs []Result) (Summary, error) {
	var acc SummaryAccumulator
	for _, r := range rs {
		acc.Add(r)
	}
	return acc.Summary()
}
