package project

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/workload"
)

func psJob(name string, cNodes int, sw float64) workload.Features {
	return workload.Features{
		Name: name, Class: workload.PSWorker, CNodes: cNodes, BatchSize: 32,
		FLOPs: 1e12, MemAccessBytes: 10 * hw.GB, InputBytes: 10 * hw.MB,
		DenseWeightBytes: 100 * hw.MB, WeightTrafficBytes: sw,
	}
}

func newProjector(t *testing.T) *Projector {
	t.Helper()
	m, err := core.New(hw.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTargetString(t *testing.T) {
	if ToAllReduceLocal.String() != "AllReduce-Local" {
		t.Error("target name wrong")
	}
	if ToAllReduceCluster.String() != "AllReduce-Cluster" {
		t.Error("target name wrong")
	}
	if Target(9).String() == "" {
		t.Error("unknown target should render")
	}
}

func TestMapRules(t *testing.T) {
	// cNodes > 8 capped to 8 for Local.
	f := psJob("big", 64, hw.GB)
	m, err := Map(f, ToAllReduceLocal, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Class != workload.AllReduceLocal || m.CNodes != 8 {
		t.Errorf("mapped = %v/%d, want AllReduce-Local/8", m.Class, m.CNodes)
	}
	// cNodes <= 8 unchanged.
	f = psJob("small", 4, hw.GB)
	m, err = Map(f, ToAllReduceLocal, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.CNodes != 4 {
		t.Errorf("small job cNodes = %d, want 4", m.CNodes)
	}
	// Cluster keeps the count.
	f = psJob("big", 64, hw.GB)
	m, err = Map(f, ToAllReduceCluster, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Class != workload.AllReduceCluster || m.CNodes != 64 {
		t.Errorf("mapped = %v/%d, want AllReduce-Cluster/64", m.Class, m.CNodes)
	}
	// Sw preserved.
	if m.WeightTrafficBytes != f.WeightTrafficBytes {
		t.Error("projection must preserve the weight volume")
	}
}

func TestMapErrors(t *testing.T) {
	f := psJob("x", 4, hw.GB)
	f.Class = workload.OneWorkerOneGPU
	f.CNodes = 1
	if _, err := Map(f, ToAllReduceLocal, 8); err == nil {
		t.Error("expected error for non-PS workload")
	}
	bad := psJob("y", 0, hw.GB)
	if _, err := Map(bad, ToAllReduceLocal, 8); err == nil {
		t.Error("expected error for invalid features")
	}
	if _, err := Map(psJob("z", 4, hw.GB), Target(9), 8); err == nil {
		t.Error("expected error for unknown target")
	}
	if _, err := Map(psJob("w", 4, hw.GB), ToAllReduceLocal, 0); err == nil {
		t.Error("expected error for zero gpusPerServer")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("expected error for nil model")
	}
	m, err := core.New(hw.BaselineNoNVLink())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m); err == nil {
		t.Error("expected error for no-NVLink config")
	}
}

// A communication-bound PS job gains ~21x node speedup on AllReduce-Local
// (Eq. 3) but its throughput speedup is diluted by the cNode cap.
func TestCommBoundProjection(t *testing.T) {
	p := newProjector(t)
	f := psJob("comm", 64, 100*hw.GB)
	r, err := p.Project(f, ToAllReduceLocal)
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeSpeedup < 15 || r.NodeSpeedup > 21.1 {
		t.Errorf("node speedup = %v, want near 21 for comm-bound job", r.NodeSpeedup)
	}
	// Throughput loses the 64 -> 8 replica factor.
	wantTp := r.NodeSpeedup * 8 / 64
	if math.Abs(r.ThroughputSpeedup-wantTp)/wantTp > 1e-9 {
		t.Errorf("throughput speedup = %v, want %v", r.ThroughputSpeedup, wantTp)
	}
}

// A compute-bound PS job sees little node gain, and with the cNode cut its
// throughput regresses — the 40.2% population of Fig. 9a.
func TestComputeBoundProjectionRegresses(t *testing.T) {
	p := newProjector(t)
	f := psJob("compute", 64, 1*hw.MB)
	f.FLOPs = 50e12
	r, err := p.Project(f, ToAllReduceLocal)
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeSpeedup > 1.2 {
		t.Errorf("node speedup = %v, want ~1 for compute-bound job", r.NodeSpeedup)
	}
	if r.ThroughputSpeedup >= 1 {
		t.Errorf("throughput speedup = %v, want < 1 after losing 56 replicas", r.ThroughputSpeedup)
	}
}

// Data-I/O-heavy jobs can slow down even per-node on AllReduce-Local due to
// PCIe contention — the 22.6% population of Fig. 9a.
func TestDataBoundProjectionSlowsDown(t *testing.T) {
	p := newProjector(t)
	f := psJob("data", 8, 1*hw.MB)
	f.InputBytes = 1 * hw.GB
	f.FLOPs = 1e9
	f.MemAccessBytes = 1 * hw.MB
	r, err := p.Project(f, ToAllReduceLocal)
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeSpeedup >= 1 {
		t.Errorf("node speedup = %v, want < 1 for data-I/O-bound job", r.NodeSpeedup)
	}
	// The data I/O component must have grown (bottleneck shift, Fig. 10).
	if r.ProjectedTimes.DataIO <= r.OriginalTimes.DataIO {
		t.Error("PCIe contention should inflate data I/O after projection")
	}
}

// AllReduce-Cluster: bounded speedup (~1.2x max), cNodes preserved, so
// node and throughput speedups coincide.
func TestClusterProjection(t *testing.T) {
	p := newProjector(t)
	f := psJob("comm", 64, 100*hw.GB)
	r, err := p.Project(f, ToAllReduceCluster)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.NodeSpeedup-r.ThroughputSpeedup) > 1e-12 {
		t.Error("cluster projection keeps cNodes; speedups must match")
	}
	if r.NodeSpeedup < 1 || r.NodeSpeedup > 1.3 {
		t.Errorf("cluster speedup = %v, want in (1, 1.24]", r.NodeSpeedup)
	}
}

func TestProjectAllSkipsNonPS(t *testing.T) {
	p := newProjector(t)
	fs := []workload.Features{
		psJob("a", 16, hw.GB),
		{Name: "solo", Class: workload.OneWorkerOneGPU, CNodes: 1, BatchSize: 1,
			FLOPs: 1e9, MemAccessBytes: 1e6, InputBytes: 1e3},
		psJob("b", 4, 2*hw.GB),
	}
	rs, err := p.ProjectAll(fs, ToAllReduceLocal)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("projected %d jobs, want 2", len(rs))
	}
	if rs[0].Original.Name != "a" || rs[1].Original.Name != "b" {
		t.Error("order not preserved")
	}
}

func TestProjectAllPropagatesError(t *testing.T) {
	p := newProjector(t)
	bad := psJob("bad", 4, hw.GB)
	bad.BatchSize = 0
	if _, err := p.ProjectAll([]workload.Features{bad}, ToAllReduceLocal); err == nil {
		t.Error("expected error for invalid job")
	}
}

func TestSummarize(t *testing.T) {
	rs := []Result{
		{NodeSpeedup: 2, ThroughputSpeedup: 0.5},
		{NodeSpeedup: 0.8, ThroughputSpeedup: 0.8},
		{NodeSpeedup: 4, ThroughputSpeedup: 3},
		{NodeSpeedup: 1.5, ThroughputSpeedup: 1.2},
	}
	s, err := Summarize(rs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 {
		t.Errorf("N = %d", s.N)
	}
	if s.FracNodeNotSped != 0.25 {
		t.Errorf("FracNodeNotSped = %v, want 0.25", s.FracNodeNotSped)
	}
	if s.FracThroughputNotSped != 0.5 {
		t.Errorf("FracThroughputNotSped = %v, want 0.5", s.FracThroughputNotSped)
	}
	if math.Abs(s.MeanNodeSpeedup-2.075) > 1e-12 {
		t.Errorf("MeanNodeSpeedup = %v", s.MeanNodeSpeedup)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("expected error for empty results")
	}
}

func TestProjectRejectsNonPS(t *testing.T) {
	p := newProjector(t)
	f := workload.Features{Name: "ar", Class: workload.AllReduceLocal,
		CNodes: 8, BatchSize: 8, FLOPs: 1e9, MemAccessBytes: 1e6,
		DenseWeightBytes: hw.MB}
	if _, err := p.Project(f, ToAllReduceLocal); err == nil {
		t.Error("expected error projecting a non-PS job")
	}
}
