package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// PlotCDF renders an ASCII plot of a CDF: `width` columns spanning
// [min, max] of the sample support, `height` rows spanning probability
// [0, 1]. It is the text-terminal stand-in for the paper's CDF figures.
func PlotCDF(w io.Writer, label string, c *stats.CDF, width, height int) error {
	if c == nil {
		return fmt.Errorf("report: nil CDF for %q", label)
	}
	if width < 8 || height < 3 {
		return fmt.Errorf("report: plot needs width >= 8 and height >= 3, got %dx%d", width, height)
	}
	lo, hi := c.Min(), c.Max()
	if hi <= lo {
		hi = lo + 1 // degenerate support: draw a step
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for col := 0; col < width; col++ {
		x := lo + (hi-lo)*float64(col)/float64(width-1)
		p := c.P(x)
		row := int(p * float64(height-1))
		if row >= height {
			row = height - 1
		}
		// Row 0 at the bottom: invert for printing.
		grid[height-1-row][col] = '*'
	}
	if _, err := fmt.Fprintf(w, "%s\n", label); err != nil {
		return err
	}
	for r, line := range grid {
		p := float64(height-1-r) / float64(height-1)
		if _, err := fmt.Fprintf(w, "%4.2f |%s|\n", p, string(line)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "      %-*.4g%*.4g\n", width/2, lo, width-width/2, hi)
	return err
}

// Bar renders a simple horizontal bar of the fraction v in [0,1] with the
// given width, e.g. "[#####     ] 50.0%".
func Bar(v float64, width int) string {
	if width < 1 {
		width = 1
	}
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	n := int(v*float64(width) + 0.5)
	return "[" + strings.Repeat("#", n) + strings.Repeat(" ", width-n) + "] " + Pct(v)
}
