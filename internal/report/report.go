// Package report renders the analysis results as plain-text tables and
// series — the rows the paper's tables and figure captions report. It is the
// output layer shared by the cmd tools and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond the header count are an error at
// render time.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	if len(t.Headers) == 0 {
		return fmt.Errorf("report: table %q has no headers", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		if len(r) > len(t.Headers) {
			return fmt.Errorf("report: table %q row has %d cells for %d headers",
				t.Title, len(r), len(t.Headers))
		}
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(t.Headers))
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	seps := make([]string, len(t.Headers))
	for i, wd := range widths {
		seps[i] = strings.Repeat("-", wd)
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Bytes renders a byte volume with a binary-free human unit (KB/MB/GB).
func Bytes(v float64) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.2fTB", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.2fGB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fMB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fKB", v/1e3)
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// CDFSeries writes a CDF as "x p" pairs sampled at the given quantiles
// (default decile grid when qs is nil).
func CDFSeries(w io.Writer, label string, c stats.Distribution, qs []float64) error {
	if c == nil {
		return fmt.Errorf("report: nil CDF for %q", label)
	}
	if qs == nil {
		qs = []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	}
	sort.Float64s(qs)
	if _, err := fmt.Fprintf(w, "%s:", label); err != nil {
		return err
	}
	for _, q := range qs {
		if _, err := fmt.Fprintf(w, " p%02.0f=%.4g", q*100, c.Quantile(q)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
