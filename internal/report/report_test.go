package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "## demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha  1") {
		t.Errorf("missing aligned row in:\n%s", out)
	}
	if !strings.Contains(out, "-----") {
		t.Error("missing separator")
	}
}

func TestTableRenderErrors(t *testing.T) {
	tb := &Table{}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err == nil {
		t.Error("expected error for headerless table")
	}
	tb = &Table{Headers: []string{"a"}}
	tb.AddRow("1", "2")
	if err := tb.Render(&buf); err == nil {
		t.Error("expected error for too many cells")
	}
}

func TestTableShortRow(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow("only")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatalf("short rows should render: %v", err)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.625) != "62.5%" {
		t.Errorf("Pct = %q", Pct(0.625))
	}
	if F2(1.236) != "1.24" {
		t.Errorf("F2 = %q", F2(1.236))
	}
	cases := map[float64]string{
		5:        "5B",
		2500:     "2.50KB",
		3.2e6:    "3.20MB",
		4.5e9:    "4.50GB",
		1.2e12:   "1.20TB",
		239.45e9: "239.45GB",
	}
	for v, want := range cases {
		if got := Bytes(v); got != want {
			t.Errorf("Bytes(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestCDFSeries(t *testing.T) {
	c, err := stats.NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := CDFSeries(&buf, "test", c, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "test:") || !strings.Contains(out, "p50=") {
		t.Errorf("unexpected series output: %q", out)
	}
	if err := CDFSeries(&buf, "custom", c, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	if err := CDFSeries(&buf, "nil", nil, nil); err == nil {
		t.Error("expected error for nil CDF")
	}
}
