package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestPlotCDF(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i)
	}
	c, err := stats.NewCDF(samples)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := PlotCDF(&buf, "uniform", c, 40, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "uniform") {
		t.Error("missing label")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Label + height rows + axis line.
	if len(lines) != 1+8+1 {
		t.Fatalf("got %d lines, want 10:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*") {
		t.Error("plot has no points")
	}
	// Monotone CDF: the top row's first '*' must be at or right of the
	// bottom row's first '*'.
	first := func(line string) int { return strings.IndexRune(line, '*') }
	top, bottom := first(lines[1]), first(lines[8])
	if top >= 0 && bottom >= 0 && top < bottom {
		t.Errorf("CDF plot not monotone: top row '*' at %d, bottom at %d", top, bottom)
	}
}

func TestPlotCDFErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := PlotCDF(&buf, "x", nil, 40, 8); err == nil {
		t.Error("expected error for nil CDF")
	}
	c, err := stats.NewCDF([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := PlotCDF(&buf, "x", c, 4, 8); err == nil {
		t.Error("expected error for tiny width")
	}
	if err := PlotCDF(&buf, "x", c, 40, 1); err == nil {
		t.Error("expected error for tiny height")
	}
}

func TestPlotCDFDegenerate(t *testing.T) {
	c, err := stats.NewCDF([]float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := PlotCDF(&buf, "point", c, 20, 4); err != nil {
		t.Fatalf("degenerate support should plot: %v", err)
	}
}

func TestBar(t *testing.T) {
	got := Bar(0.5, 10)
	if !strings.HasPrefix(got, "[#####     ]") {
		t.Errorf("Bar(0.5,10) = %q", got)
	}
	if !strings.HasSuffix(got, "50.0%") {
		t.Errorf("Bar(0.5,10) = %q", got)
	}
	if !strings.HasPrefix(Bar(-1, 5), "[     ]") {
		t.Error("negative clamps to empty")
	}
	if !strings.HasPrefix(Bar(2, 5), "[#####]") {
		t.Error(">1 clamps to full")
	}
	if Bar(0.5, 0) == "" {
		t.Error("zero width should still render")
	}
}
