// Package cluster models the physical infrastructure of Fig. 1: multi-GPU
// servers with or without an NVLink hybrid-mesh grid, assembled into a
// cluster connected by Ethernet. It provides device inventory and
// communication-path lookup (which link class a transfer between two devices
// crosses), which the traffic models and the fabric simulator build on.
package cluster

import (
	"fmt"

	"repro/internal/hw"
)

// DeviceKind distinguishes CPUs (which host input data and, under PS, the
// parameter shards) from GPUs (which host model replicas).
type DeviceKind int

const (
	// CPU is the host processor with the server's main memory.
	CPU DeviceKind = iota
	// GPU is an accelerator device.
	GPU
)

// String returns "CPU" or "GPU".
func (k DeviceKind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	default:
		return fmt.Sprintf("DeviceKind(%d)", int(k))
	}
}

// DeviceID identifies a device within a cluster.
type DeviceID struct {
	Server int
	Kind   DeviceKind
	// Index is the GPU index within the server; 0 for CPUs.
	Index int
}

// String renders e.g. "s3:GPU2" or "s0:CPU".
func (d DeviceID) String() string {
	if d.Kind == CPU {
		return fmt.Sprintf("s%d:CPU", d.Server)
	}
	return fmt.Sprintf("s%d:GPU%d", d.Server, d.Index)
}

// Server is one multi-GPU machine (Fig. 1).
type Server struct {
	ID        int
	NumGPUs   int
	HasNVLink bool
}

// Cluster is a set of identical servers joined by Ethernet.
type Cluster struct {
	cfg     hw.Config
	servers []Server
}

// New builds a cluster of n identical servers from the hardware
// configuration.
func New(cfg hw.Config, numServers int) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numServers <= 0 {
		return nil, fmt.Errorf("cluster: numServers must be positive, got %d", numServers)
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < numServers; i++ {
		c.servers = append(c.servers, Server{
			ID:        i,
			NumGPUs:   cfg.GPUsPerServer,
			HasNVLink: cfg.HasNVLink,
		})
	}
	return c, nil
}

// Config returns the hardware configuration the cluster was built from.
func (c *Cluster) Config() hw.Config { return c.cfg }

// NumServers returns the number of servers.
func (c *Cluster) NumServers() int { return len(c.servers) }

// NumGPUs returns the total number of GPUs in the cluster.
func (c *Cluster) NumGPUs() int {
	return len(c.servers) * c.cfg.GPUsPerServer
}

// Server returns the server with the given id.
func (c *Cluster) Server(id int) (Server, error) {
	if id < 0 || id >= len(c.servers) {
		return Server{}, fmt.Errorf("cluster: server %d out of range [0,%d)", id, len(c.servers))
	}
	return c.servers[id], nil
}

// GPUDevice returns the DeviceID for GPU idx on server srv, validating
// bounds.
func (c *Cluster) GPUDevice(srv, idx int) (DeviceID, error) {
	if srv < 0 || srv >= len(c.servers) {
		return DeviceID{}, fmt.Errorf("cluster: server %d out of range", srv)
	}
	if idx < 0 || idx >= c.cfg.GPUsPerServer {
		return DeviceID{}, fmt.Errorf("cluster: GPU %d out of range [0,%d)", idx, c.cfg.GPUsPerServer)
	}
	return DeviceID{Server: srv, Kind: GPU, Index: idx}, nil
}

// CPUDevice returns the DeviceID for the CPU of server srv.
func (c *Cluster) CPUDevice(srv int) (DeviceID, error) {
	if srv < 0 || srv >= len(c.servers) {
		return DeviceID{}, fmt.Errorf("cluster: server %d out of range", srv)
	}
	return DeviceID{Server: srv, Kind: CPU}, nil
}

// AllGPUs enumerates every GPU device in server-major order.
func (c *Cluster) AllGPUs() []DeviceID {
	out := make([]DeviceID, 0, c.NumGPUs())
	for s := range c.servers {
		for g := 0; g < c.cfg.GPUsPerServer; g++ {
			out = append(out, DeviceID{Server: s, Kind: GPU, Index: g})
		}
	}
	return out
}

// Path describes the link a point-to-point transfer between two devices
// crosses. Transfers within a device are LinkLocal; GPU<->GPU within an
// NVLink server cross NVLink; GPU<->GPU within a non-NVLink server and any
// CPU<->GPU transfer cross PCIe; anything cross-server crosses Ethernet
// (plus PCIe hops accounted for by the traffic models, not here).
type Path struct {
	Link hw.LinkClass
	// CrossServer reports whether the endpoints are on different servers.
	CrossServer bool
}

// PathBetween resolves the link class between two devices.
func (c *Cluster) PathBetween(a, b DeviceID) (Path, error) {
	if err := c.checkDevice(a); err != nil {
		return Path{}, err
	}
	if err := c.checkDevice(b); err != nil {
		return Path{}, err
	}
	if a == b {
		return Path{Link: hw.LinkLocal}, nil
	}
	if a.Server != b.Server {
		return Path{Link: hw.LinkEthernet, CrossServer: true}, nil
	}
	// Same server.
	if a.Kind == GPU && b.Kind == GPU {
		if c.servers[a.Server].HasNVLink {
			return Path{Link: hw.LinkNVLink}, nil
		}
		return Path{Link: hw.LinkPCIe}, nil
	}
	// CPU<->GPU.
	return Path{Link: hw.LinkPCIe}, nil
}

func (c *Cluster) checkDevice(d DeviceID) error {
	if d.Server < 0 || d.Server >= len(c.servers) {
		return fmt.Errorf("cluster: device %v: server out of range", d)
	}
	switch d.Kind {
	case CPU:
		if d.Index != 0 {
			return fmt.Errorf("cluster: device %v: CPU index must be 0", d)
		}
	case GPU:
		if d.Index < 0 || d.Index >= c.cfg.GPUsPerServer {
			return fmt.Errorf("cluster: device %v: GPU index out of range", d)
		}
	default:
		return fmt.Errorf("cluster: device %v: unknown kind", d)
	}
	return nil
}

// PlaceReplicas assigns n model replicas to GPUs, packing servers in order
// (replica i -> server i/GPUsPerServer, GPU i%GPUsPerServer). It errors if
// the cluster has fewer than n GPUs.
func (c *Cluster) PlaceReplicas(n int) ([]DeviceID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: replica count must be positive, got %d", n)
	}
	if n > c.NumGPUs() {
		return nil, fmt.Errorf("cluster: %d replicas exceed %d GPUs", n, c.NumGPUs())
	}
	out := make([]DeviceID, n)
	for i := 0; i < n; i++ {
		out[i] = DeviceID{
			Server: i / c.cfg.GPUsPerServer,
			Kind:   GPU,
			Index:  i % c.cfg.GPUsPerServer,
		}
	}
	return out, nil
}

// ServersSpanned returns how many distinct servers the device list touches.
func ServersSpanned(devs []DeviceID) int {
	seen := map[int]bool{}
	for _, d := range devs {
		seen[d.Server] = true
	}
	return len(seen)
}
