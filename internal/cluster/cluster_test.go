package cluster

import (
	"testing"

	"repro/internal/hw"
)

func mustCluster(t *testing.T, cfg hw.Config, n int) *Cluster {
	t.Helper()
	c, err := New(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewErrors(t *testing.T) {
	if _, err := New(hw.Baseline(), 0); err == nil {
		t.Error("expected error for zero servers")
	}
	bad := hw.Baseline()
	bad.PCIeBandwidth = 0
	if _, err := New(bad, 1); err == nil {
		t.Error("expected error for invalid config")
	}
}

func TestInventory(t *testing.T) {
	c := mustCluster(t, hw.Baseline(), 4)
	if c.NumServers() != 4 {
		t.Errorf("NumServers = %d, want 4", c.NumServers())
	}
	if c.NumGPUs() != 32 {
		t.Errorf("NumGPUs = %d, want 32", c.NumGPUs())
	}
	s, err := c.Server(2)
	if err != nil || s.ID != 2 || s.NumGPUs != 8 || !s.HasNVLink {
		t.Errorf("Server(2) = %+v, %v", s, err)
	}
	if _, err := c.Server(4); err == nil {
		t.Error("expected error for out-of-range server")
	}
	if _, err := c.Server(-1); err == nil {
		t.Error("expected error for negative server")
	}
	gpus := c.AllGPUs()
	if len(gpus) != 32 {
		t.Fatalf("AllGPUs = %d, want 32", len(gpus))
	}
	if gpus[0] != (DeviceID{Server: 0, Kind: GPU, Index: 0}) {
		t.Errorf("first GPU = %v", gpus[0])
	}
	if gpus[31] != (DeviceID{Server: 3, Kind: GPU, Index: 7}) {
		t.Errorf("last GPU = %v", gpus[31])
	}
}

func TestDeviceLookup(t *testing.T) {
	c := mustCluster(t, hw.Baseline(), 2)
	if _, err := c.GPUDevice(0, 7); err != nil {
		t.Errorf("GPUDevice(0,7): %v", err)
	}
	if _, err := c.GPUDevice(0, 8); err == nil {
		t.Error("expected error for GPU index 8")
	}
	if _, err := c.GPUDevice(2, 0); err == nil {
		t.Error("expected error for server 2")
	}
	if _, err := c.CPUDevice(1); err != nil {
		t.Error("CPUDevice(1) should work")
	}
	if _, err := c.CPUDevice(5); err == nil {
		t.Error("expected error for CPU on missing server")
	}
}

func TestPathBetween(t *testing.T) {
	c := mustCluster(t, hw.Baseline(), 2)
	gpu00, _ := c.GPUDevice(0, 0)
	gpu01, _ := c.GPUDevice(0, 1)
	gpu10, _ := c.GPUDevice(1, 0)
	cpu0, _ := c.CPUDevice(0)

	cases := []struct {
		a, b DeviceID
		link hw.LinkClass
		xsrv bool
	}{
		{gpu00, gpu00, hw.LinkLocal, false},
		{gpu00, gpu01, hw.LinkNVLink, false},
		{gpu00, gpu10, hw.LinkEthernet, true},
		{cpu0, gpu00, hw.LinkPCIe, false},
		{gpu00, cpu0, hw.LinkPCIe, false},
	}
	for _, tc := range cases {
		p, err := c.PathBetween(tc.a, tc.b)
		if err != nil {
			t.Errorf("PathBetween(%v,%v): %v", tc.a, tc.b, err)
			continue
		}
		if p.Link != tc.link || p.CrossServer != tc.xsrv {
			t.Errorf("PathBetween(%v,%v) = %+v, want link=%v cross=%v",
				tc.a, tc.b, p, tc.link, tc.xsrv)
		}
	}
}

func TestPathWithoutNVLink(t *testing.T) {
	c := mustCluster(t, hw.BaselineNoNVLink(), 1)
	a, _ := c.GPUDevice(0, 0)
	b, _ := c.GPUDevice(0, 1)
	p, err := c.PathBetween(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Link != hw.LinkPCIe {
		t.Errorf("GPU-GPU link without NVLink = %v, want PCIe", p.Link)
	}
}

func TestPathValidation(t *testing.T) {
	c := mustCluster(t, hw.Baseline(), 1)
	good, _ := c.GPUDevice(0, 0)
	badServer := DeviceID{Server: 9, Kind: GPU}
	badIdx := DeviceID{Server: 0, Kind: GPU, Index: 99}
	badCPU := DeviceID{Server: 0, Kind: CPU, Index: 1}
	badKind := DeviceID{Server: 0, Kind: DeviceKind(7)}
	for _, bad := range []DeviceID{badServer, badIdx, badCPU, badKind} {
		if _, err := c.PathBetween(good, bad); err == nil {
			t.Errorf("expected error for device %v", bad)
		}
		if _, err := c.PathBetween(bad, good); err == nil {
			t.Errorf("expected error for device %v (first arg)", bad)
		}
	}
}

func TestPlaceReplicas(t *testing.T) {
	c := mustCluster(t, hw.Baseline(), 2)
	devs, err := c.PlaceReplicas(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 10 {
		t.Fatalf("placed %d, want 10", len(devs))
	}
	// First 8 on server 0, next 2 on server 1.
	if devs[7].Server != 0 || devs[8].Server != 1 {
		t.Errorf("packing wrong: devs[7]=%v devs[8]=%v", devs[7], devs[8])
	}
	if ServersSpanned(devs) != 2 {
		t.Errorf("ServersSpanned = %d, want 2", ServersSpanned(devs))
	}
	if _, err := c.PlaceReplicas(0); err == nil {
		t.Error("expected error for zero replicas")
	}
	if _, err := c.PlaceReplicas(17); err == nil {
		t.Error("expected error for too many replicas")
	}
}

func TestStringers(t *testing.T) {
	if GPU.String() != "GPU" || CPU.String() != "CPU" {
		t.Error("DeviceKind strings wrong")
	}
	if DeviceKind(5).String() == "" {
		t.Error("unknown kind should still render")
	}
	d := DeviceID{Server: 3, Kind: GPU, Index: 2}
	if d.String() != "s3:GPU2" {
		t.Errorf("DeviceID string = %q", d.String())
	}
	cpu := DeviceID{Server: 0, Kind: CPU}
	if cpu.String() != "s0:CPU" {
		t.Errorf("CPU DeviceID string = %q", cpu.String())
	}
}

func TestServersSpannedEmpty(t *testing.T) {
	if ServersSpanned(nil) != 0 {
		t.Error("empty device list spans 0 servers")
	}
}
