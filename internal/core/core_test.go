package core

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/workload"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(hw.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func psJob(sw float64) workload.Features {
	return workload.Features{
		Name: "ps", Class: workload.PSWorker, CNodes: 16, BatchSize: 32,
		FLOPs: 1e12, MemAccessBytes: 10 * hw.GB, InputBytes: 10 * hw.MB,
		DenseWeightBytes: 100 * hw.MB, WeightTrafficBytes: sw,
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	bad := hw.Baseline()
	bad.PCIeBandwidth = 0
	if _, err := New(bad); err == nil {
		t.Error("expected error for invalid config")
	}
}

func TestBreakdownComponents(t *testing.T) {
	m := newModel(t)
	f := psJob(1 * hw.GB)
	tm, err := m.Breakdown(f)
	if err != nil {
		t.Fatal(err)
	}
	// Td = 10MB / (10GB/s * 0.7), coloc=1 for PS.
	wantTd := 10 * hw.MB / (10 * hw.GB * 0.7)
	if math.Abs(tm.DataIO-wantTd)/wantTd > 1e-9 {
		t.Errorf("DataIO = %v, want %v", tm.DataIO, wantTd)
	}
	// TcFLOPs = 1e12 / (11e12 * 0.7).
	wantCF := 1e12 / (11 * hw.TFLOPS * 0.7)
	if math.Abs(tm.ComputeFLOPs-wantCF)/wantCF > 1e-9 {
		t.Errorf("ComputeFLOPs = %v, want %v", tm.ComputeFLOPs, wantCF)
	}
	// TcMem = 10GB / (1TB/s * 0.7).
	wantCM := 10 * hw.GB / (1 * hw.TB * 0.7)
	if math.Abs(tm.ComputeMem-wantCM)/wantCM > 1e-9 {
		t.Errorf("ComputeMem = %v, want %v", tm.ComputeMem, wantCM)
	}
	// Tw = Sw/Ethernet_eff + Sw/PCIe_eff.
	wantTw := 1*hw.GB/(hw.Gbps(25)*0.7) + 1*hw.GB/(10*hw.GB*0.7)
	if math.Abs(tm.Weights-wantTw)/wantTw > 1e-9 {
		t.Errorf("Weights = %v, want %v", tm.Weights, wantTw)
	}
	if tm.WeightsByLink[hw.LinkEthernet] <= tm.WeightsByLink[hw.LinkPCIe] {
		t.Error("Ethernet leg should dominate the PCIe leg for PS jobs")
	}
	// Total = sum under OverlapNone.
	if got := tm.Total(); math.Abs(got-(tm.DataIO+tm.Compute()+tm.Weights)) > 1e-12 {
		t.Errorf("Total = %v, want component sum", got)
	}
}

// Paper validation arithmetic (Sec. IV-B): ResNet50 compute-bound time on the
// testbed is 1.56T / (15T * 70%) = 0.149 s.
func TestResNet50PaperArithmetic(t *testing.T) {
	m, err := New(hw.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	cs, err := workload.Lookup("ResNet50")
	if err != nil {
		t.Fatal(err)
	}
	tm, err := m.Breakdown(cs.Features)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm.ComputeFLOPs-0.1486) > 0.001 {
		t.Errorf("ResNet50 compute-bound = %v s, paper reports ~0.149 s", tm.ComputeFLOPs)
	}
}

// Eq. 3: communication-bound PS jobs gain exactly 21x when ported to
// AllReduce-Local under the baseline bandwidths.
func TestEquation3Ratio(t *testing.T) {
	m := newModel(t)
	sw := 5 * hw.GB
	ps := psJob(sw)
	psT, err := m.Breakdown(ps)
	if err != nil {
		t.Fatal(err)
	}
	ar := ps
	ar.Class = workload.AllReduceLocal
	ar.CNodes = 8
	arT, err := m.Breakdown(ar)
	if err != nil {
		t.Fatal(err)
	}
	ratio := psT.Weights / arT.Weights
	if math.Abs(ratio-21.0) > 1e-9 {
		t.Errorf("comm-time ratio = %v, Eq. 3 gives exactly 21", ratio)
	}
}

// AllReduce-Cluster improves on PS/Worker by at most ~1.2x (Sec. III-C1).
func TestAllReduceClusterBoundedGain(t *testing.T) {
	m := newModel(t)
	ps := psJob(5 * hw.GB)
	psT, err := m.Breakdown(ps)
	if err != nil {
		t.Fatal(err)
	}
	arc := ps
	arc.Class = workload.AllReduceCluster
	arcT, err := m.Breakdown(arc)
	if err != nil {
		t.Fatal(err)
	}
	ratio := psT.Weights / arcT.Weights
	if ratio < 1.2 || ratio > 1.3 {
		t.Errorf("PS->ARC comm ratio = %v, want ~1.235 (<=1.2x end-to-end per paper)", ratio)
	}
}

func TestOverlapModes(t *testing.T) {
	m := newModel(t)
	f := psJob(10 * hw.GB)
	none, err := m.Breakdown(f)
	if err != nil {
		t.Fatal(err)
	}
	m.Overlap = OverlapIdeal
	ideal, err := m.Breakdown(f)
	if err != nil {
		t.Fatal(err)
	}
	if ideal.Total() >= none.Total() {
		t.Error("ideal overlap must be faster than non-overlap")
	}
	want := math.Max(ideal.DataIO, math.Max(ideal.Compute(), ideal.Weights))
	if ideal.Total() != want {
		t.Errorf("ideal Total = %v, want max %v", ideal.Total(), want)
	}
	// Fractions still sum to 1 under ideal overlap.
	var sum float64
	for _, c := range Components() {
		fr, err := ideal.Fraction(c)
		if err != nil {
			t.Fatal(err)
		}
		sum += fr
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %v, want 1", sum)
	}
}

func TestFractionsSumToOne(t *testing.T) {
	m := newModel(t)
	for _, name := range workload.ZooNames() {
		cs, err := workload.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := m.Breakdown(cs.Features)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var sum, hwSum float64
		for _, c := range Components() {
			fr, err := tm.Fraction(c)
			if err != nil {
				t.Fatal(err)
			}
			if fr < 0 || fr > 1 {
				t.Errorf("%s %v fraction out of range: %v", name, c, fr)
			}
			sum += fr
		}
		for _, h := range HardwareComponents() {
			fr, err := tm.HardwareFraction(h)
			if err != nil {
				t.Fatal(err)
			}
			hwSum += fr
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s component fractions sum to %v", name, sum)
		}
		if math.Abs(hwSum-1) > 1e-9 {
			t.Errorf("%s hardware fractions sum to %v", name, hwSum)
		}
	}
}

func TestHardwareAttribution(t *testing.T) {
	m := newModel(t)
	f := psJob(1 * hw.GB)
	tm, err := m.Breakdown(f)
	if err != nil {
		t.Fatal(err)
	}
	pcie, err := tm.HardwareTime(HWPCIe)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pcie-(tm.DataIO+tm.WeightsByLink[hw.LinkPCIe])) > 1e-15 {
		t.Error("PCIe attribution should include data I/O and PCIe weight hop")
	}
	eth, err := tm.HardwareTime(HWEthernet)
	if err != nil {
		t.Fatal(err)
	}
	if eth != tm.WeightsByLink[hw.LinkEthernet] {
		t.Error("Ethernet attribution mismatch")
	}
	nv, err := tm.HardwareTime(HWNVLink)
	if err != nil {
		t.Fatal(err)
	}
	if nv != 0 {
		t.Error("PS job should have no NVLink time")
	}
	if _, err := tm.HardwareTime(HardwareComponent(9)); err == nil {
		t.Error("expected error for unknown hardware component")
	}
	if _, err := tm.HardwareFraction(HardwareComponent(9)); err == nil {
		t.Error("expected error for unknown hardware component fraction")
	}
}

func TestThroughputEq2(t *testing.T) {
	m := newModel(t)
	f := psJob(1 * hw.GB)
	tp, err := m.Throughput(f)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.StepTime(f)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(f.CNodes) / st * float64(f.BatchSize)
	if math.Abs(tp-want)/want > 1e-12 {
		t.Errorf("Throughput = %v, want %v", tp, want)
	}
}

func TestDataIOContention(t *testing.T) {
	m := newModel(t)
	// Same per-replica input volume; AllReduce-Local with 8 replicas
	// contends 8x on PCIe.
	single := workload.Features{
		Name: "s", Class: workload.OneWorkerOneGPU, CNodes: 1, BatchSize: 8,
		FLOPs: 1e9, MemAccessBytes: 1e6, InputBytes: 100 * hw.MB,
	}
	local := single
	local.Class = workload.AllReduceLocal
	local.CNodes = 8
	local.DenseWeightBytes = 10 * hw.MB
	ts, err := m.Breakdown(single)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := m.Breakdown(local)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tl.DataIO/ts.DataIO-8) > 1e-9 {
		t.Errorf("AR-Local data I/O contention = %v, want 8x", tl.DataIO/ts.DataIO)
	}
}

func TestBottleneck(t *testing.T) {
	m := newModel(t)
	// Heavy weight traffic: bottleneck is Ethernet.
	f := psJob(50 * hw.GB)
	h, frac, err := m.Bottleneck(f)
	if err != nil {
		t.Fatal(err)
	}
	if h != HWEthernet {
		t.Errorf("bottleneck = %v, want Ethernet", h)
	}
	if frac < 0.5 {
		t.Errorf("bottleneck fraction = %v, want > 0.5", frac)
	}
	// Compute-dominated 1w1g job: bottleneck on the GPU.
	g := workload.Features{
		Name: "c", Class: workload.OneWorkerOneGPU, CNodes: 1, BatchSize: 1,
		FLOPs: 100e12, MemAccessBytes: 1e6, InputBytes: 1e3,
	}
	h, _, err = m.Bottleneck(g)
	if err != nil {
		t.Fatal(err)
	}
	if h != HWGPUFLOPs {
		t.Errorf("bottleneck = %v, want GPU_FLOPs", h)
	}
}

func TestBreakdownErrors(t *testing.T) {
	m := newModel(t)
	bad := psJob(1 * hw.GB)
	bad.CNodes = 0
	if _, err := m.Breakdown(bad); err == nil {
		t.Error("expected error for invalid features")
	}
	m2 := newModel(t)
	m2.Eff = workload.Efficiency{} // invalid
	if _, err := m2.Breakdown(psJob(1 * hw.GB)); err == nil {
		t.Error("expected error for invalid efficiency")
	}
	m3 := newModel(t)
	m3.Config.GPU.PeakFLOPS = -1
	if _, err := m3.Breakdown(psJob(1 * hw.GB)); err == nil {
		t.Error("expected error for invalid config")
	}
	// AllReduce job on a no-NVLink config cannot run.
	m4, err := New(hw.BaselineNoNVLink())
	if err != nil {
		t.Fatal(err)
	}
	ar := psJob(1 * hw.GB)
	ar.Class = workload.AllReduceLocal
	ar.CNodes = 8
	if _, err := m4.Breakdown(ar); err == nil {
		t.Error("expected error for AllReduce on no-NVLink server")
	}
	if _, err := m4.Throughput(ar); err == nil {
		t.Error("Throughput should propagate breakdown error")
	}
	if _, _, err := m4.Bottleneck(ar); err == nil {
		t.Error("Bottleneck should propagate breakdown error")
	}
	if _, err := m4.StepTime(ar); err == nil {
		t.Error("StepTime should propagate breakdown error")
	}
}

func TestStringers(t *testing.T) {
	if OverlapNone.String() != "non-overlap" || OverlapIdeal.String() != "ideal-overlap" {
		t.Error("overlap mode names wrong")
	}
	if OverlapMode(9).String() == "" {
		t.Error("unknown overlap mode should render")
	}
	if CompDataIO.String() != "Data I/O" || CompComputeMem.String() != "Comp.(memory-bound)" {
		t.Error("component names should match figure legends")
	}
	if Component(9).String() == "" || HardwareComponent(9).String() == "" {
		t.Error("unknown enum strings should render")
	}
	if HWGPUFLOPs.String() != "GPU_FLOPs" {
		t.Error("hardware component name wrong")
	}
	if len(Components()) != 4 || len(HardwareComponents()) != 5 {
		t.Error("enum lists wrong length")
	}
}

func TestComponentAccessErrors(t *testing.T) {
	var tm Times
	if _, err := tm.Component(Component(42)); err == nil {
		t.Error("expected error for unknown component")
	}
	if _, err := tm.Fraction(Component(42)); err == nil {
		t.Error("expected error for unknown component fraction")
	}
	// Zero breakdown: fractions are 0, not NaN.
	fr, err := tm.Fraction(CompDataIO)
	if err != nil || fr != 0 {
		t.Errorf("zero breakdown fraction = %v, %v", fr, err)
	}
	hf, err := tm.HardwareFraction(HWPCIe)
	if err != nil || hf != 0 {
		t.Errorf("zero breakdown hw fraction = %v, %v", hf, err)
	}
}
