// Package core implements the paper's primary contribution: the analytical
// performance model of Sec. II-B. One training step is decomposed into input
// data I/O time Td = Sd/Bd, weight/gradient communication time Tw = Sw/Bw
// (summed over the media of Table II, cf. Eq. 3) and computation time
// Tc = #FLOPs/peakFLOPs + Smem/Bmem, with every denominator derated by a
// hardware-efficiency assumption (70% by default).
//
// The model deliberately ignores computation/communication overlap
// (Ttotal = Td + Tc + Tw); OverlapIdeal switches to Ttotal = max(Td, Tc, Tw)
// for the Sec. V-B sensitivity study. The goal is exposing fundamental
// bottlenecks, not precise runtime prediction.
//
// Model is also the reference implementation behind the "analytical" entry
// of the internal/backend registry, which the public pai.Engine drives;
// alternative performance models plug in there without touching this
// package.
package core

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/hw"
	"repro/internal/workload"
)

// OverlapMode selects how component times combine into a step time.
type OverlapMode int

const (
	// OverlapNone sums all components (the paper's default framework).
	OverlapNone OverlapMode = iota
	// OverlapIdeal takes the max of {Td, Tc, Tw} (Sec. V-B ideal case).
	OverlapIdeal
	// OverlapPartial interpolates between the two with a factor alpha:
	// Ttotal = max + (1-alpha)(sum - max). The paper leaves quantifying the
	// practical overlap potential as an open question (Sec. V-B); this mode
	// makes alpha a first-class model parameter for sensitivity sweeps.
	OverlapPartial
)

// String names the overlap mode.
func (m OverlapMode) String() string {
	switch m {
	case OverlapNone:
		return "non-overlap"
	case OverlapIdeal:
		return "ideal-overlap"
	case OverlapPartial:
		return "partial-overlap"
	default:
		return fmt.Sprintf("OverlapMode(%d)", int(m))
	}
}

// Component identifies one slice of the execution-time breakdown
// (the legend of Figs. 7, 8, 10, 12).
type Component int

const (
	// CompDataIO is input-data movement over PCIe.
	CompDataIO Component = iota
	// CompWeights is weight/gradient communication.
	CompWeights
	// CompComputeFLOPs is compute-bound operation time.
	CompComputeFLOPs
	// CompComputeMem is memory-bound (element-wise) operation time.
	CompComputeMem
)

var componentNames = map[Component]string{
	CompDataIO:       "Data I/O",
	CompWeights:      "Weights traffic",
	CompComputeFLOPs: "Comp.(compute-bound)",
	CompComputeMem:   "Comp.(memory-bound)",
}

// String returns the figure-legend label of the component.
func (c Component) String() string {
	if s, ok := componentNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// Components lists the four breakdown components in figure-legend order.
func Components() []Component {
	return []Component{CompDataIO, CompWeights, CompComputeFLOPs, CompComputeMem}
}

// HardwareComponent identifies the hardware a time slice is attributed to
// (the legend of Fig. 8a).
type HardwareComponent int

const (
	HWGPUFLOPs HardwareComponent = iota
	HWGPUMemory
	HWPCIe
	HWEthernet
	HWNVLink
)

var hwNames = map[HardwareComponent]string{
	HWGPUFLOPs:  "GPU_FLOPs",
	HWGPUMemory: "GPU_memory",
	HWPCIe:      "PCIe",
	HWEthernet:  "Ethernet",
	HWNVLink:    "NVLink",
}

// String returns the Fig. 8a legend label.
func (h HardwareComponent) String() string {
	if s, ok := hwNames[h]; ok {
		return s
	}
	return fmt.Sprintf("HardwareComponent(%d)", int(h))
}

// HardwareComponents lists the hardware attribution targets in Fig. 8a order.
func HardwareComponents() []HardwareComponent {
	return []HardwareComponent{HWGPUFLOPs, HWGPUMemory, HWPCIe, HWEthernet, HWNVLink}
}

// Times is the execution-time breakdown of one training step on one cNode,
// in seconds.
type Times struct {
	// DataIO is Td, input-data transfer over PCIe (including the co-location
	// contention factor when multiple replicas share a server's PCIe).
	DataIO float64
	// ComputeFLOPs is the compute-bound part of Tc.
	ComputeFLOPs float64
	// ComputeMem is the memory-bound part of Tc.
	ComputeMem float64
	// Weights is Tw, total weight/gradient communication across all media.
	Weights float64
	// WeightsByLink attributes Tw to the link classes it crosses.
	WeightsByLink map[hw.LinkClass]float64
	// Overlap records the mode Total() will combine the parts under.
	Overlap OverlapMode
	// OverlapAlpha is the interpolation factor used by OverlapPartial:
	// 0 behaves like OverlapNone, 1 like OverlapIdeal.
	OverlapAlpha float64
}

// Compute is Tc = compute-bound + memory-bound time.
func (t Times) Compute() float64 { return t.ComputeFLOPs + t.ComputeMem }

// Total is the modeled step time under the breakdown's overlap mode.
func (t Times) Total() float64 {
	sum := t.DataIO + t.Compute() + t.Weights
	max := math.Max(t.DataIO, math.Max(t.Compute(), t.Weights))
	switch t.Overlap {
	case OverlapIdeal:
		return max
	case OverlapPartial:
		alpha := t.OverlapAlpha
		if alpha < 0 {
			alpha = 0
		}
		if alpha > 1 {
			alpha = 1
		}
		return max + (1-alpha)*(sum-max)
	default:
		return sum
	}
}

// Component returns the time of one breakdown component.
func (t Times) Component(c Component) (float64, error) {
	switch c {
	case CompDataIO:
		return t.DataIO, nil
	case CompWeights:
		return t.Weights, nil
	case CompComputeFLOPs:
		return t.ComputeFLOPs, nil
	case CompComputeMem:
		return t.ComputeMem, nil
	default:
		return 0, fmt.Errorf("core: unknown component %v", c)
	}
}

// Fraction returns the component's share of the non-overlap total
// (the per-job percentages aggregated in Figs. 7 and 8). The denominator is
// always the component sum so fractions add to 1 regardless of overlap mode.
func (t Times) Fraction(c Component) (float64, error) {
	v, err := t.Component(c)
	if err != nil {
		return 0, err
	}
	sum := t.DataIO + t.Compute() + t.Weights
	if sum == 0 {
		return 0, nil
	}
	return v / sum, nil
}

// HardwareTime attributes the breakdown to hardware components (Fig. 8a):
// compute-bound time to GPU FLOPs, memory-bound to GPU memory, data I/O plus
// any PCIe weight hop to PCIe, and weight traffic to Ethernet/NVLink as it
// crosses them.
func (t Times) HardwareTime(h HardwareComponent) (float64, error) {
	switch h {
	case HWGPUFLOPs:
		return t.ComputeFLOPs, nil
	case HWGPUMemory:
		return t.ComputeMem, nil
	case HWPCIe:
		return t.DataIO + t.WeightsByLink[hw.LinkPCIe], nil
	case HWEthernet:
		return t.WeightsByLink[hw.LinkEthernet], nil
	case HWNVLink:
		return t.WeightsByLink[hw.LinkNVLink], nil
	default:
		return 0, fmt.Errorf("core: unknown hardware component %v", h)
	}
}

// HardwareFraction returns the hardware component's share of the component
// sum.
func (t Times) HardwareFraction(h HardwareComponent) (float64, error) {
	v, err := t.HardwareTime(h)
	if err != nil {
		return 0, err
	}
	sum := t.DataIO + t.Compute() + t.Weights
	if sum == 0 {
		return 0, nil
	}
	return v / sum, nil
}

// Model evaluates the analytical breakdown for workloads on one hardware
// configuration.
type Model struct {
	// Config is the system configuration (Table I baseline, Table III
	// variations, or the Sec. IV testbed).
	Config hw.Config
	// Eff is the hardware-efficiency assumption; DefaultEfficiency (70%
	// everywhere) reproduces the paper's framework, per-workload Table VI
	// values reproduce the "measured" bars of Fig. 12.
	Eff workload.Efficiency
	// Overlap selects the total-time combination rule.
	Overlap OverlapMode
	// OverlapAlpha is the OverlapPartial interpolation factor in [0,1].
	OverlapAlpha float64
	// Arch tunes the derived traffic models.
	Arch arch.Options
}

// New returns a Model over the configuration with the paper's default
// assumptions (70% efficiency, no overlap, ring collectives).
func New(cfg hw.Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{
		Config:  cfg,
		Eff:     workload.DefaultEfficiency(),
		Overlap: OverlapNone,
		Arch:    arch.DefaultOptions(),
	}, nil
}

// Clone returns a copy of the model. Mutating the copy's assumptions (Eff,
// Overlap, Config, Arch) leaves the receiver untouched; Breakdown allocates
// fresh Times on every call, so the copy shares no mutable state.
func (m *Model) Clone() *Model {
	c := *m
	return &c
}

// linkEfficiency maps a link class to the efficiency knob that derates it.
func (m *Model) linkEfficiency(l hw.LinkClass) float64 {
	switch l {
	case hw.LinkPCIe:
		return m.Eff.PCIe
	case hw.LinkEthernet, hw.LinkNVLink:
		return m.Eff.Network
	default:
		return 1
	}
}

// Breakdown evaluates the analytical model for one workload.
func (m *Model) Breakdown(f workload.Features) (Times, error) {
	if err := m.Config.Validate(); err != nil {
		return Times{}, err
	}
	if err := m.Eff.Validate(); err != nil {
		return Times{}, err
	}
	if err := f.Validate(); err != nil {
		return Times{}, err
	}

	if m.Overlap == OverlapPartial && (m.OverlapAlpha < 0 || m.OverlapAlpha > 1 || math.IsNaN(m.OverlapAlpha)) {
		return Times{}, fmt.Errorf("core: OverlapAlpha must be in [0,1], got %v", m.OverlapAlpha)
	}
	t := Times{Overlap: m.Overlap, OverlapAlpha: m.OverlapAlpha,
		WeightsByLink: map[hw.LinkClass]float64{}}

	// Input data I/O: Sd over PCIe, shared by co-located replicas.
	coloc, err := arch.ColocatedReplicas(f, m.Config.GPUsPerServer)
	if err != nil {
		return Times{}, err
	}
	t.DataIO = f.InputBytes * float64(coloc) / (m.Config.PCIeBandwidth * m.Eff.PCIe)

	// Computation: compute-bound + memory-bound.
	t.ComputeFLOPs = f.FLOPs / (m.Config.GPU.PeakFLOPS * m.Eff.GPUCompute)
	t.ComputeMem = f.MemAccessBytes / (m.Config.GPU.MemBandwidth * m.Eff.GPUMemory)

	// Weight/gradient communication: Sw over each medium of the class.
	flows, err := arch.WeightFlows(f, m.Arch)
	if err != nil {
		return Times{}, err
	}
	for _, fl := range flows {
		bw, err := m.Config.Bandwidth(fl.Link)
		if err != nil {
			return Times{}, fmt.Errorf("core: workload %q: %w", f.Name, err)
		}
		dt := fl.Bytes / (bw * m.linkEfficiency(fl.Link))
		t.WeightsByLink[fl.Link] += dt
		t.Weights += dt
	}
	return t, nil
}

// StepTime returns the modeled per-step execution time.
func (m *Model) StepTime(f workload.Features) (float64, error) {
	t, err := m.Breakdown(f)
	if err != nil {
		return 0, err
	}
	return t.Total(), nil
}

// Throughput returns the job's training throughput in samples per second
// (Eq. 2): #cNodes / Ttotal x batch size.
func (m *Model) Throughput(f workload.Features) (float64, error) {
	total, err := m.StepTime(f)
	if err != nil {
		return 0, err
	}
	if total == 0 {
		return 0, fmt.Errorf("core: workload %q has zero step time", f.Name)
	}
	return float64(f.CNodes) / total * float64(f.BatchSize), nil
}

// Bottleneck returns the hardware component with the largest attributed time.
func (m *Model) Bottleneck(f workload.Features) (HardwareComponent, float64, error) {
	t, err := m.Breakdown(f)
	if err != nil {
		return 0, 0, err
	}
	best := HWGPUFLOPs
	var bestFrac float64
	for _, h := range HardwareComponents() {
		fr, err := t.HardwareFraction(h)
		if err != nil {
			return 0, 0, err
		}
		if fr > bestFrac {
			best, bestFrac = h, fr
		}
	}
	return best, bestFrac, nil
}
