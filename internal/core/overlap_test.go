package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/workload"
)

func TestPartialOverlapBoundaries(t *testing.T) {
	m := newModel(t)
	f := psJob(5 * hw.GB)

	none, err := m.Breakdown(f)
	if err != nil {
		t.Fatal(err)
	}
	m.Overlap = OverlapIdeal
	ideal, err := m.Breakdown(f)
	if err != nil {
		t.Fatal(err)
	}

	// alpha = 0 equals non-overlap; alpha = 1 equals ideal.
	m.Overlap = OverlapPartial
	m.OverlapAlpha = 0
	p0, err := m.Breakdown(f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p0.Total()-none.Total()) > 1e-12 {
		t.Errorf("alpha=0 total %v != non-overlap %v", p0.Total(), none.Total())
	}
	m.OverlapAlpha = 1
	p1, err := m.Breakdown(f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1.Total()-ideal.Total()) > 1e-12 {
		t.Errorf("alpha=1 total %v != ideal %v", p1.Total(), ideal.Total())
	}
}

// Property: the partial-overlap total is monotone non-increasing in alpha
// and always between ideal and non-overlap.
func TestPartialOverlapMonotoneProperty(t *testing.T) {
	m := newModel(t)
	m.Overlap = OverlapPartial
	fn := func(aRaw, bRaw uint8, swRaw uint16) bool {
		a := float64(aRaw) / 255
		b := float64(bRaw) / 255
		if a > b {
			a, b = b, a
		}
		f := psJob(float64(swRaw)*1e7 + 1e6)
		m.OverlapAlpha = a
		ta, err := m.Breakdown(f)
		if err != nil {
			return false
		}
		m.OverlapAlpha = b
		tb, err := m.Breakdown(f)
		if err != nil {
			return false
		}
		sum := ta.DataIO + ta.Compute() + ta.Weights
		max := math.Max(ta.DataIO, math.Max(ta.Compute(), ta.Weights))
		return tb.Total() <= ta.Total()+1e-12 &&
			ta.Total() <= sum+1e-12 && ta.Total() >= max-1e-12
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPartialOverlapValidation(t *testing.T) {
	m := newModel(t)
	m.Overlap = OverlapPartial
	m.OverlapAlpha = 1.5
	if _, err := m.Breakdown(psJob(hw.GB)); err == nil {
		t.Error("expected error for alpha > 1")
	}
	m.OverlapAlpha = -0.1
	if _, err := m.Breakdown(psJob(hw.GB)); err == nil {
		t.Error("expected error for alpha < 0")
	}
	m.OverlapAlpha = math.NaN()
	if _, err := m.Breakdown(psJob(hw.GB)); err == nil {
		t.Error("expected error for NaN alpha")
	}
}

func TestOverlapPartialString(t *testing.T) {
	if OverlapPartial.String() != "partial-overlap" {
		t.Error("partial overlap name wrong")
	}
}

// Clamp behavior on raw Times (out-of-range alpha clamped, not erroring —
// Times is a value type users may construct directly).
func TestTimesPartialClamp(t *testing.T) {
	tm := Times{DataIO: 1, ComputeFLOPs: 2, ComputeMem: 3, Weights: 4,
		Overlap: OverlapPartial, OverlapAlpha: 2}
	if tm.Total() != 5 { // max(1,5,4) = 5 at alpha clamped to 1
		t.Errorf("clamped alpha=2 total = %v, want 5", tm.Total())
	}
	tm.OverlapAlpha = -1
	if tm.Total() != 10 { // sum at alpha clamped to 0
		t.Errorf("clamped alpha=-1 total = %v, want 10", tm.Total())
	}
}

// Property: component fractions stay in [0,1] and sum to 1 for any valid
// feature vector under the default model.
func TestFractionSumProperty(t *testing.T) {
	m := newModel(t)
	fn := func(flops, mem, in, sw uint32, nRaw uint8) bool {
		n := int(nRaw)%128 + 1
		f := workload.Features{
			Name: "q", Class: workload.PSWorker, CNodes: n, BatchSize: 8,
			FLOPs:              float64(flops) + 1,
			MemAccessBytes:     float64(mem),
			InputBytes:         float64(in),
			DenseWeightBytes:   1e6,
			WeightTrafficBytes: float64(sw),
		}
		bd, err := m.Breakdown(f)
		if err != nil {
			return false
		}
		var sum float64
		for _, c := range Components() {
			fr, err := bd.Fraction(c)
			if err != nil || fr < 0 || fr > 1 {
				return false
			}
			sum += fr
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: raising any bandwidth never increases the step time
// (monotonicity of the analytical model).
func TestBandwidthMonotoneProperty(t *testing.T) {
	base := newModel(t)
	fn := func(factorRaw uint8, resRaw uint8) bool {
		factor := 1 + float64(factorRaw)/32 // [1, ~9]
		res := hw.AllResources()[int(resRaw)%4]
		f := psJob(3 * hw.GB)
		t0, err := base.StepTime(f)
		if err != nil {
			return false
		}
		cfg, err := base.Config.Scale(res, factor)
		if err != nil {
			return false
		}
		m2 := *base
		m2.Config = cfg
		t1, err := m2.StepTime(f)
		if err != nil {
			return false
		}
		return t1 <= t0+1e-12
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: compute-bound time scales linearly in FLOPs.
func TestComputeLinearityProperty(t *testing.T) {
	m := newModel(t)
	fn := func(kRaw uint8) bool {
		k := float64(kRaw%16) + 1
		f := psJob(hw.GB)
		b1, err := m.Breakdown(f)
		if err != nil {
			return false
		}
		f.FLOPs *= k
		b2, err := m.Breakdown(f)
		if err != nil {
			return false
		}
		return math.Abs(b2.ComputeFLOPs-k*b1.ComputeFLOPs) < 1e-9*b2.ComputeFLOPs+1e-15
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
