package window_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	pai "repro"
	"repro/internal/analyze"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/window"
	"repro/internal/workload"
)

// factory builds the projection-free report sink the synthetic tests use
// (projection needs an engine; the engine-backed test below covers it).
func factory() (*analyze.MultiSink, error) {
	return analyze.NewMultiSink(analyze.NewBreakdownAccumulator(),
		analyze.NewComponentCDFSink(), analyze.NewHardwareCDFSink()), nil
}

// rec is one synthetic evaluated job.
type rec struct {
	f workload.Features
	t core.Times
}

// job synthesizes a deterministic evaluated record with the given arrival.
func job(i int, arrival float64) rec {
	f := workload.Features{
		Name:             fmt.Sprintf("j%03d", i),
		Class:            workload.PSWorker,
		CNodes:           1 + i%7,
		BatchSize:        32,
		FLOPs:            1e9 * float64(1+i%5),
		MemAccessBytes:   1e8 * float64(1+i%3),
		InputBytes:       1e7,
		DenseWeightBytes: 1e6,
		ArrivalSec:       arrival,
	}
	t := core.Times{
		DataIO:       0.01 * float64(1+i%3),
		ComputeFLOPs: 0.05 * float64(1+i%4),
		ComputeMem:   0.02,
		Weights:      0.04 * float64(1+i%2),
		WeightsByLink: map[hw.LinkClass]float64{
			hw.LinkEthernet: 0.03, hw.LinkPCIe: 0.01 * float64(1+i%2)},
	}
	return rec{f, t}
}

// windowOf mirrors the ring's arrival-to-window clamp.
func windowOf(arrival, width float64) int64 {
	if !(arrival > 0) {
		return 0
	}
	return int64(arrival / width)
}

// offlineFold is the analyze.FoldSinks merge shape with one shard per
// window: partition the records by window (stream order preserved), fill one
// fresh sink per non-empty window, then merge into a fresh total in
// ascending window order. keep filters which windows participate.
func offlineFold(t *testing.T, width float64, recs []rec, keep func(int64) bool) *analyze.MultiSink {
	t.Helper()
	parts := map[int64][]rec{}
	var order []int64
	for _, r := range recs {
		w := windowOf(r.f.ArrivalSec, width)
		if !keep(w) {
			continue
		}
		if _, ok := parts[w]; !ok {
			order = append(order, w)
		}
		parts[w] = append(parts[w], r)
	}
	for i := range order { // ascending window order
		for j := i + 1; j < len(order); j++ {
			if order[j] < order[i] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	total, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range order {
		s, err := factory()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range parts[w] {
			if err := s.Add(r.f, r.t); err != nil {
				t.Fatal(err)
			}
		}
		if err := total.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	return total
}

func mustBytes(t *testing.T, s *analyze.MultiSink) []byte {
	t.Helper()
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func feed(t *testing.T, r *window.Ring, recs []rec) {
	t.Helper()
	for i, rc := range recs {
		if err := r.Add(rc.f, rc.t); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
}

// TestFoldMatchesOfflineFold pins the headline identity: a windowed fold is
// byte-identical to the offline per-window shard fold of the same records.
func TestFoldMatchesOfflineFold(t *testing.T) {
	const width = 10.0
	r, err := window.New(width, 16, factory, "test")
	if err != nil {
		t.Fatal(err)
	}
	var recs []rec
	for i := 0; i < 200; i++ {
		recs = append(recs, job(i, float64(i)*0.7)) // spans 14 windows
	}
	feed(t, r, recs)
	got, n, err := r.Fold(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("folded %d jobs, want %d", n, len(recs))
	}
	want := offlineFold(t, width, recs, func(int64) bool { return true })
	if !bytes.Equal(mustBytes(t, got), mustBytes(t, want)) {
		t.Fatal("windowed fold diverges from offline per-window fold")
	}
}

// TestFoldLastNSubset checks Fold(lastN) equals the offline fold restricted
// to the newest lastN windows, including when some of them are empty.
func TestFoldLastNSubset(t *testing.T) {
	const width = 10.0
	r, err := window.New(width, 16, factory, "test")
	if err != nil {
		t.Fatal(err)
	}
	// Occupy windows 0, 2 and 9 only; 1, 3..8 stay empty.
	var recs []rec
	for i := 0; i < 30; i++ {
		arrival := []float64{5, 25, 95}[i%3]
		recs = append(recs, job(i, arrival+0.01*float64(i)))
	}
	feed(t, r, recs)
	head := int64(9)
	for _, lastN := range []int{1, 3, 8, 16} {
		oldest := head - int64(lastN) + 1
		want := offlineFold(t, width, recs, func(w int64) bool { return w >= oldest })
		got, _, err := r.Fold(lastN)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mustBytes(t, got), mustBytes(t, want)) {
			t.Fatalf("Fold(%d) diverges from offline fold of windows >= %d", lastN, oldest)
		}
	}
}

// TestFoldAcrossRotationBoundary streams far past the ring capacity: old
// windows must rotate out, and the fold must equal the offline fold of just
// the surviving windows.
func TestFoldAcrossRotationBoundary(t *testing.T) {
	const width, count = 10.0, 4
	r, err := window.New(width, count, factory, "test")
	if err != nil {
		t.Fatal(err)
	}
	var recs []rec
	for i := 0; i < 120; i++ {
		recs = append(recs, job(i, float64(i))) // 12 windows, ring holds 4
	}
	feed(t, r, recs)
	if st := r.Stats(); st.Rotated == 0 {
		t.Fatal("no windows rotated out")
	}
	head := windowOf(recs[len(recs)-1].f.ArrivalSec, width)
	oldest := head - count + 1
	want := offlineFold(t, width, recs, func(w int64) bool { return w >= oldest })
	got, _, err := r.Fold(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustBytes(t, got), mustBytes(t, want)) {
		t.Fatal("post-rotation fold diverges from offline fold of surviving windows")
	}
}

// TestOutOfOrderIntoSealedBucket sends late arrivals into already-sealed
// windows: they must re-open the bucket and the fold must stay byte-exact.
func TestOutOfOrderIntoSealedBucket(t *testing.T) {
	const width = 10.0
	r, err := window.New(width, 8, factory, "test")
	if err != nil {
		t.Fatal(err)
	}
	var recs []rec
	for i := 0; i < 60; i++ {
		arrival := float64(i)
		if i%10 == 7 {
			arrival = float64(i) - 25 // lands 2-3 windows behind the head
			if arrival < 0 {
				arrival = 1
			}
		}
		recs = append(recs, job(i, arrival))
	}
	feed(t, r, recs)
	if st := r.Stats(); st.Late == 0 {
		t.Fatal("no late arrivals recorded; test input is wrong")
	}
	want := offlineFold(t, width, recs, func(int64) bool { return true })
	got, n, err := r.Fold(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("folded %d jobs, want %d", n, len(recs))
	}
	if !bytes.Equal(mustBytes(t, got), mustBytes(t, want)) {
		t.Fatal("fold with late arrivals diverges from offline fold")
	}
}

// TestTooOldArrivalsDropped checks arrivals older than the whole ring are
// counted and excluded, not folded and not fatal.
func TestTooOldArrivalsDropped(t *testing.T) {
	const width, count = 10.0, 3
	r, err := window.New(width, count, factory, "test")
	if err != nil {
		t.Fatal(err)
	}
	var kept []rec
	for i := 0; i < 80; i++ {
		rc := job(i, float64(i))
		feed(t, r, []rec{rc})
		kept = append(kept, rc)
	}
	tooOld := job(999, 2) // window 0; head is 7 with a 3-window ring
	if err := r.Add(tooOld.f, tooOld.t); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
	head := windowOf(kept[len(kept)-1].f.ArrivalSec, width)
	oldest := head - count + 1
	want := offlineFold(t, width, kept, func(w int64) bool { return w >= oldest })
	got, _, err := r.Fold(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustBytes(t, got), mustBytes(t, want)) {
		t.Fatal("fold after a dropped arrival diverges from offline fold")
	}
}

// TestEmptyRingFolds checks an unstarted ring folds to the empty factory
// sink without error.
func TestEmptyRingFolds(t *testing.T) {
	r, err := window.New(60, 8, factory, "test")
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := r.Fold(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("empty ring folded %d jobs", n)
	}
	want, _ := factory()
	if !bytes.Equal(mustBytes(t, got), mustBytes(t, want)) {
		t.Fatal("empty ring fold differs from an empty factory sink")
	}
}

// TestNewRejectsBadParams pins the constructor validation.
func TestNewRejectsBadParams(t *testing.T) {
	if _, err := window.New(0, 8, factory, ""); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := window.New(60, 0, factory, ""); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := window.New(60, 8, nil, ""); err == nil {
		t.Fatal("nil factory accepted")
	}
}

// TestEngineFoldByteIdentity is the end-to-end identity the service relies
// on: stream an arrival-stamped generated trace through a real engine into a
// ring (full report sink, projection included), and compare the folded bytes
// against the engine's own offline sharded evaluation of the same records
// partitioned per window.
func TestEngineFoldByteIdentity(t *testing.T) {
	p := pai.DefaultTraceParams()
	p.NumJobs = 2000
	p.Seed = 11
	p.ArrivalRate = 7200 // mean gap 0.5s -> ~17 windows of 60s
	tr, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := pai.New(pai.WithConfig(pai.BaselineConfig()))
	if err != nil {
		t.Fatal(err)
	}
	reportFactory := func() (*analyze.MultiSink, error) {
		return eng.NewReportSink(pai.ToAllReduceLocal)
	}

	const width = 60.0
	r, err := window.New(width, 64, reportFactory, "identity-test")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n, err := eng.EvaluateSource(ctx, pai.NewSliceJobSource(tr.Jobs), func(res pai.StreamResult) error {
		return r.Add(res.Job, res.Times)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != p.NumJobs {
		t.Fatalf("evaluated %d jobs, want %d", n, p.NumJobs)
	}
	got, foldN, err := r.Fold(0)
	if err != nil {
		t.Fatal(err)
	}
	if foldN != p.NumJobs {
		t.Fatalf("folded %d jobs, want %d", foldN, p.NumJobs)
	}

	// Offline: one shard per window, ascending, through the engine's
	// standard sharded fold.
	parts := map[int64][]pai.Features{}
	var order []int64
	for _, f := range tr.Jobs {
		w := windowOf(f.ArrivalSec, width)
		if _, ok := parts[w]; !ok {
			order = append(order, w)
		}
		parts[w] = append(parts[w], f)
	}
	for i := range order {
		for j := i + 1; j < len(order); j++ {
			if order[j] < order[i] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	var srcs []pai.JobSource
	for _, w := range order {
		srcs = append(srcs, pai.NewSliceJobSource(parts[w]))
	}
	want, counts, err := eng.EvaluateSourcesInto(ctx,
		func() (pai.Sink, error) { return reportFactory() }, srcs...)
	if err != nil {
		t.Fatal(err)
	}
	var offlineN int
	for _, c := range counts {
		offlineN += c
	}
	if offlineN != p.NumJobs {
		t.Fatalf("offline evaluated %d jobs, want %d", offlineN, p.NumJobs)
	}
	gb := mustBytes(t, got)
	wb, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, wb) {
		t.Fatal("windowed fold is not byte-identical to the offline sharded evaluation")
	}
}
