// Package window buckets a continuous stream of evaluated jobs into
// fixed-width time windows of mergeable analysis sinks — the serving-side
// counterpart of the batch shard fold (analyze.FoldSinks). A Ring holds the
// most recent B windows of width W seconds: the newest window accumulates
// live, older windows are sealed into framed snapshots (analyze.WriteSnapshot
// framing, so a window's state is exactly the bytes a batch worker would
// ship), and windows older than the ring are rotated out for flat memory
// under unbounded streams.
//
// Fold merges the last N windows in ascending window order through a fresh
// factory sink — the exact merge shape of analyze.FoldSinks — so the folded
// aggregate is byte-identical to evaluating the same records offline, one
// shard per window.
package window

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/analyze"
	"repro/internal/core"
	"repro/internal/workload"
)

// Factory builds one empty per-window sink. Every window of a ring uses the
// same factory, mirroring the per-shard factory of analyze.FoldSinks.
type Factory func() (*analyze.MultiSink, error)

// Ring is the WindowRing: a bounded ring of time windows, each folding the
// jobs whose ArrivalSec falls inside it. The newest window is a live sink;
// sealed windows are stored only as framed snapshot bytes (a few KB each,
// independent of job count), and the unseal path (factory + Merge) restores
// live state bit-exactly, so late arrivals into a sealed window re-open it
// without drift. A Ring is not goroutine-safe; callers serialize access.
type Ring struct {
	width   float64
	count   int
	factory Factory
	// meta is the provenance base stamped into sealed-window snapshots;
	// window index rides in the shard-index field.
	meta string

	started bool
	head    int64 // index of the live (newest) window
	live    *analyze.MultiSink
	liveN   int
	sealed  map[int64]*bucket

	jobs    int64
	late    int64
	dropped int64
	rotated int64
}

// bucket is one sealed window: its framed snapshot and job count.
type bucket struct {
	frame []byte
	n     int
}

// New builds a ring of count windows of width seconds each.
func New(width float64, count int, factory Factory, meta string) (*Ring, error) {
	if width <= 0 || math.IsNaN(width) || math.IsInf(width, 0) {
		return nil, fmt.Errorf("window: width must be finite and > 0, got %v", width)
	}
	if count <= 0 {
		return nil, fmt.Errorf("window: count must be > 0, got %d", count)
	}
	if factory == nil {
		return nil, errors.New("window: nil factory")
	}
	return &Ring{width: width, count: count, factory: factory, meta: meta,
		sealed: map[int64]*bucket{}}, nil
}

// Width returns the window width in seconds.
func (r *Ring) Width() float64 { return r.width }

// Count returns the ring capacity in windows.
func (r *Ring) Count() int { return r.count }

// indexOf maps an arrival time to its window index. Negative and non-finite
// times clamp to window 0 ("unknown arrival lands in the first window").
func (r *Ring) indexOf(arrival float64) int64 {
	if !(arrival > 0) { // catches negatives, zero and NaN
		return 0
	}
	return int64(arrival / r.width)
}

// Add folds one evaluated job into the window its arrival time selects.
// Jobs for windows newer than the head rotate the ring forward; jobs for
// sealed windows still inside the ring re-open them (unseal, add, re-seal);
// jobs older than the ring are counted and dropped.
func (r *Ring) Add(f workload.Features, t core.Times) error {
	idx := r.indexOf(f.ArrivalSec)
	if !r.started {
		s, err := r.factory()
		if err != nil {
			return err
		}
		r.started, r.head, r.live, r.liveN = true, idx, s, 0
	}
	switch {
	case idx == r.head:
		// Common case: in-order arrival into the live window.
	case idx > r.head:
		if err := r.rotateTo(idx); err != nil {
			return err
		}
	default: // idx < head: out-of-order arrival
		if idx <= r.head-int64(r.count) {
			r.dropped++
			return nil
		}
		r.late++
		return r.addSealed(idx, f, t)
	}
	if err := r.live.Add(f, t); err != nil {
		return err
	}
	r.liveN++
	r.jobs++
	return nil
}

// rotateTo seals the live window, prunes windows that fall off the ring, and
// opens a fresh live window at idx.
func (r *Ring) rotateTo(idx int64) error {
	if err := r.seal(r.head, r.live, r.liveN); err != nil {
		return err
	}
	oldest := idx - int64(r.count) + 1
	for w := range r.sealed {
		if w < oldest {
			delete(r.sealed, w)
			r.rotated++
		}
	}
	s, err := r.factory()
	if err != nil {
		return err
	}
	r.head, r.live, r.liveN = idx, s, 0
	return nil
}

// seal frames a window's sink into snapshot bytes. Empty windows are not
// stored: folding them would merge empty sinks, a no-op by construction.
func (r *Ring) seal(idx int64, s *analyze.MultiSink, n int) error {
	if n == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := analyze.WriteSnapshotMeta(&buf, s, analyze.ShardMeta(r.meta, int(idx))); err != nil {
		return fmt.Errorf("window: seal window %d: %w", idx, err)
	}
	r.sealed[idx] = &bucket{frame: buf.Bytes(), n: n}
	return nil
}

// unseal restores a sealed window to live, addable state. A restored
// snapshot alone is merge/report-only (its projection sink has no
// projector), so restoration goes through a fresh factory sink and one
// Merge — which copies the snapshot state bit-exactly into a sink that can
// keep folding.
func (r *Ring) unseal(b *bucket) (*analyze.MultiSink, error) {
	snap, _, err := analyze.ReadSnapshotMeta(bytes.NewReader(b.frame))
	if err != nil {
		return nil, err
	}
	s, err := r.factory()
	if err != nil {
		return nil, err
	}
	if err := s.Merge(snap); err != nil {
		return nil, err
	}
	return s, nil
}

// addSealed folds a late arrival into a sealed window: unseal, add, re-seal.
func (r *Ring) addSealed(idx int64, f workload.Features, t core.Times) error {
	var s *analyze.MultiSink
	var err error
	n := 0
	if b, ok := r.sealed[idx]; ok {
		if s, err = r.unseal(b); err != nil {
			return fmt.Errorf("window: reopen window %d: %w", idx, err)
		}
		n = b.n
	} else if s, err = r.factory(); err != nil {
		return err
	}
	if err := s.Add(f, t); err != nil {
		return err
	}
	if err := r.seal(idx, s, n+1); err != nil {
		return err
	}
	r.jobs++
	return nil
}

// Fold merges the newest lastN windows (lastN <= 0 or > Count folds the
// whole ring) into one fresh sink, in ascending window order — the merge
// shape of analyze.FoldSinks with one shard per window, so the result is
// byte-identical to the offline fold of the same records. The second return
// is the number of jobs in the folded windows. An unstarted ring folds to an
// empty factory sink.
func (r *Ring) Fold(lastN int) (*analyze.MultiSink, int, error) {
	if lastN <= 0 || lastN > r.count {
		lastN = r.count
	}
	total, err := r.factory()
	if err != nil {
		return nil, 0, err
	}
	if !r.started {
		return total, 0, nil
	}
	jobs := 0
	for w := r.head - int64(lastN) + 1; w <= r.head; w++ {
		switch {
		case w == r.head:
			if err := total.Merge(r.live); err != nil {
				return nil, 0, err
			}
			jobs += r.liveN
		default:
			b, ok := r.sealed[w]
			if !ok {
				continue // empty window: merging it would be a no-op
			}
			snap, _, err := analyze.ReadSnapshotMeta(bytes.NewReader(b.frame))
			if err != nil {
				return nil, 0, fmt.Errorf("window: fold window %d: %w", w, err)
			}
			if err := total.Merge(snap); err != nil {
				return nil, 0, err
			}
			jobs += b.n
		}
	}
	return total, jobs, nil
}

// Stats is a point-in-time occupancy snapshot for /metrics.
type Stats struct {
	// Jobs counts every job folded into the ring (late re-opens included,
	// too-old drops excluded).
	Jobs int64 `json:"jobs"`
	// Head is the index of the live window (arrival 0 is window 0).
	Head int64 `json:"head_window"`
	// Occupied counts non-empty windows currently in the ring.
	Occupied int `json:"windows_occupied"`
	// Late counts out-of-order arrivals that re-opened a sealed window.
	Late int64 `json:"late_arrivals"`
	// Dropped counts arrivals older than the whole ring, silently skipped.
	Dropped int64 `json:"dropped_too_old"`
	// Rotated counts sealed windows aged out of the ring.
	Rotated int64 `json:"windows_rotated"`
}

// Stats reports ring occupancy.
func (r *Ring) Stats() Stats {
	occ := len(r.sealed)
	if r.started && r.liveN > 0 {
		occ++
	}
	return Stats{Jobs: r.jobs, Head: r.head, Occupied: occ,
		Late: r.late, Dropped: r.dropped, Rotated: r.rotated}
}

// Windows lists the non-empty window indices currently held, ascending —
// introspection for tests and debugging.
func (r *Ring) Windows() []int64 {
	var ws []int64
	for w := range r.sealed {
		ws = append(ws, w)
	}
	if r.started && r.liveN > 0 {
		ws = append(ws, r.head)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	return ws
}
