package simnet

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddResourceValidation(t *testing.T) {
	s := New()
	if _, err := s.AddResource("bad", 0); err == nil {
		t.Error("expected error for zero rate")
	}
	if _, err := s.AddResource("bad", math.NaN()); err == nil {
		t.Error("expected error for NaN rate")
	}
	if _, err := s.AddResource("bad", math.Inf(1)); err == nil {
		t.Error("expected error for Inf rate")
	}
	if _, err := s.AddResource("ok", 100); err != nil {
		t.Errorf("valid resource rejected: %v", err)
	}
}

func TestAddTaskValidation(t *testing.T) {
	s := New()
	r, err := s.AddResource("r", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddTask(ResourceID(5), 1); err == nil {
		t.Error("expected error for bad resource")
	}
	if _, err := s.AddTask(r, -1); err == nil {
		t.Error("expected error for negative demand")
	}
	if _, err := s.AddTask(r, math.Inf(1)); err == nil {
		t.Error("expected error for Inf demand")
	}
	if _, err := s.AddTask(r, 1, TaskID(9)); err == nil {
		t.Error("expected error for bad dependency")
	}
	if _, err := s.AddTask(r, 1); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
}

func TestSingleTask(t *testing.T) {
	s := New()
	r, _ := s.AddResource("link", 10) // 10 units/s
	task, _ := s.AddTask(r, 50)
	mk, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mk-5) > 1e-9 {
		t.Errorf("makespan = %v, want 5", mk)
	}
	ft, err := s.FinishTime(task)
	if err != nil || math.Abs(ft-5) > 1e-9 {
		t.Errorf("finish = %v, %v", ft, err)
	}
	busy, err := s.BusyTime(r)
	if err != nil || math.Abs(busy-5) > 1e-9 {
		t.Errorf("busy = %v, %v", busy, err)
	}
	util, err := s.Utilization(r)
	if err != nil || math.Abs(util-1) > 1e-9 {
		t.Errorf("utilization = %v, %v", util, err)
	}
}

// Two equal tasks sharing one resource: each sees half the rate, both finish
// together at twice the solo time.
func TestProcessorSharing(t *testing.T) {
	s := New()
	r, _ := s.AddResource("link", 10)
	a, _ := s.AddTask(r, 50)
	b, _ := s.AddTask(r, 50)
	mk, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mk-10) > 1e-9 {
		t.Errorf("makespan = %v, want 10", mk)
	}
	fa, _ := s.FinishTime(a)
	fb, _ := s.FinishTime(b)
	if math.Abs(fa-10) > 1e-9 || math.Abs(fb-10) > 1e-9 {
		t.Errorf("finish times = %v, %v; want 10, 10", fa, fb)
	}
}

// Unequal tasks: the short one finishes first, after which the long one gets
// the full rate.
func TestProcessorSharingUnequal(t *testing.T) {
	s := New()
	r, _ := s.AddResource("link", 10)
	short, _ := s.AddTask(r, 10)
	long, _ := s.AddTask(r, 50)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	fs, _ := s.FinishTime(short)
	fl, _ := s.FinishTime(long)
	// Shared until short finishes: 10/(10/2) = 2s; long has 40 left at full
	// rate: 4s more.
	if math.Abs(fs-2) > 1e-9 {
		t.Errorf("short finish = %v, want 2", fs)
	}
	if math.Abs(fl-6) > 1e-9 {
		t.Errorf("long finish = %v, want 6", fl)
	}
}

func TestDependencies(t *testing.T) {
	s := New()
	r, _ := s.AddResource("link", 10)
	a, _ := s.AddTask(r, 20)
	b, _ := s.AddTask(r, 30, a)
	mk, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Serial: 2 + 3.
	if math.Abs(mk-5) > 1e-9 {
		t.Errorf("makespan = %v, want 5", mk)
	}
	fb, _ := s.FinishTime(b)
	if math.Abs(fb-5) > 1e-9 {
		t.Errorf("b finish = %v, want 5", fb)
	}
}

func TestZeroDemandBarrier(t *testing.T) {
	s := New()
	r, _ := s.AddResource("link", 10)
	a, _ := s.AddTask(r, 20)
	barrier, _ := s.AddTask(r, 0, a)
	c, _ := s.AddTask(r, 10, barrier)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	fb, _ := s.FinishTime(barrier)
	if math.Abs(fb-2) > 1e-9 {
		t.Errorf("barrier finish = %v, want 2", fb)
	}
	fc, _ := s.FinishTime(c)
	if math.Abs(fc-3) > 1e-9 {
		t.Errorf("c finish = %v, want 3", fc)
	}
}

func TestTwoResourcesIndependent(t *testing.T) {
	s := New()
	r1, _ := s.AddResource("a", 10)
	r2, _ := s.AddResource("b", 5)
	s.AddTask(r1, 100) // 10s
	s.AddTask(r2, 20)  // 4s
	mk, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mk-10) > 1e-9 {
		t.Errorf("makespan = %v, want 10", mk)
	}
	b2, _ := s.BusyTime(r2)
	if math.Abs(b2-4) > 1e-9 {
		t.Errorf("r2 busy = %v, want 4", b2)
	}
	u2, _ := s.Utilization(r2)
	if math.Abs(u2-0.4) > 1e-9 {
		t.Errorf("r2 utilization = %v, want 0.4", u2)
	}
}

func TestRunTwiceFails(t *testing.T) {
	s := New()
	r, _ := s.AddResource("r", 1)
	s.AddTask(r, 1)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("expected error for double Run")
	}
	if _, err := s.AddTask(r, 1); err == nil {
		t.Error("expected error adding tasks after Run")
	}
}

func TestAccessorsBeforeRun(t *testing.T) {
	s := New()
	r, _ := s.AddResource("r", 1)
	task, _ := s.AddTask(r, 1)
	if _, err := s.FinishTime(task); err == nil {
		t.Error("expected error for FinishTime before Run")
	}
	if _, err := s.BusyTime(r); err == nil {
		t.Error("expected error for BusyTime before Run")
	}
}

func TestAccessorBounds(t *testing.T) {
	s := New()
	r, _ := s.AddResource("r", 1)
	s.AddTask(r, 1)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FinishTime(TaskID(9)); err == nil {
		t.Error("expected error for bad task id")
	}
	if _, err := s.BusyTime(ResourceID(9)); err == nil {
		t.Error("expected error for bad resource id")
	}
	if _, err := s.Utilization(ResourceID(9)); err == nil {
		t.Error("expected error for bad resource id")
	}
}

func TestEmptyRun(t *testing.T) {
	s := New()
	mk, err := s.Run()
	if err != nil || mk != 0 {
		t.Errorf("empty run = %v, %v; want 0, nil", mk, err)
	}
}

// Property: with k identical concurrent tasks on one resource, makespan is
// k times the solo duration (work conservation under processor sharing).
func TestWorkConservationProperty(t *testing.T) {
	f := func(kRaw uint8, demandRaw uint16) bool {
		k := int(kRaw)%7 + 1
		demand := float64(demandRaw)/100 + 0.1
		s := New()
		r, err := s.AddResource("link", 10)
		if err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			if _, err := s.AddTask(r, demand); err != nil {
				return false
			}
		}
		mk, err := s.Run()
		if err != nil {
			return false
		}
		want := float64(k) * demand / 10
		return math.Abs(mk-want) < 1e-6*want+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: makespan never decreases when adding a task.
func TestMonotoneMakespanProperty(t *testing.T) {
	f := func(demands []uint16) bool {
		if len(demands) == 0 || len(demands) > 30 {
			return true
		}
		run := func(n int) float64 {
			s := New()
			r, _ := s.AddResource("link", 7)
			for i := 0; i < n; i++ {
				s.AddTask(r, float64(demands[i])/10)
			}
			mk, err := s.Run()
			if err != nil {
				return -1
			}
			return mk
		}
		full := run(len(demands))
		partial := run(len(demands) - 1)
		return full >= partial-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
