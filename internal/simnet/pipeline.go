package simnet

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/hw"
	"repro/internal/workload"
)

// PipelineResult reports one pipelined training step.
type PipelineResult struct {
	// Makespan is the wall-clock step time with layer-wise overlap.
	Makespan float64
	// SerialTime is the non-overlap reference (sum of phases).
	SerialTime float64
	// IdealTime is max(Td, Tc, Tw) — the Sec. V-B ideal bound with Tw summed
	// over media. Media pipelining can beat it (chunk l+1's Ethernet leg
	// overlaps chunk l's PCIe leg), in which case EffectiveAlpha clamps to 1.
	IdealTime float64
	// LowerBound is the true fluid lower bound: the busiest single resource,
	// max(Td, Tc, max over links of Tw_link). Makespan never goes below it.
	LowerBound float64
	// EffectiveAlpha locates the pipelined time between SerialTime and
	// IdealTime: 0 = no overlap benefit, 1 = at (or beyond) the paper's
	// ideal. Zero when the bounds coincide.
	EffectiveAlpha float64
}

// SimulatePipelinedStep runs one training step with layer-wise gradient
// overlap: the model computes `layers` sequential layer blocks, and the
// weight chunk of layer L starts synchronizing as soon as that layer's
// compute finishes — concurrently with the remaining layers' compute. This
// is the mechanism communication-scheduling systems (Poseidon, TicTac; the
// paper's refs [36, 37]) exploit; the paper treats overlap as a binary
// assumption, this simulation derives how much of the ideal is mechanically
// reachable.
//
// The data phase still precedes compute (input is needed before layer 0),
// and a final barrier models the synchronous step boundary.
func SimulatePipelinedStep(cfg hw.Config, eff workload.Efficiency, f workload.Features,
	opt arch.Options, layers int) (PipelineResult, error) {
	if layers < 1 {
		return PipelineResult{}, fmt.Errorf("simnet: layers must be >= 1, got %d", layers)
	}
	if err := cfg.Validate(); err != nil {
		return PipelineResult{}, err
	}
	if err := eff.Validate(); err != nil {
		return PipelineResult{}, err
	}
	if err := f.Validate(); err != nil {
		return PipelineResult{}, err
	}
	coloc, err := arch.ColocatedReplicas(f, cfg.GPUsPerServer)
	if err != nil {
		return PipelineResult{}, err
	}
	servers, err := arch.ServersUsed(f, cfg.GPUsPerServer)
	if err != nil {
		return PipelineResult{}, err
	}
	flows, err := arch.WeightFlows(f, opt)
	if err != nil {
		return PipelineResult{}, err
	}

	s := New()
	pcie := make([]ResourceID, servers)
	nic := make([]ResourceID, servers)
	for i := 0; i < servers; i++ {
		if pcie[i], err = s.AddResource(fmt.Sprintf("s%d.pcie", i), cfg.PCIeBandwidth*eff.PCIe); err != nil {
			return PipelineResult{}, err
		}
		if nic[i], err = s.AddResource(fmt.Sprintf("s%d.nic", i), cfg.EthernetBandwidth*eff.Network); err != nil {
			return PipelineResult{}, err
		}
	}
	n := f.CNodes
	gflops := make([]ResourceID, n)
	gmem := make([]ResourceID, n)
	nvport := make([]ResourceID, n)
	serverOf := make([]int, n)
	for r := 0; r < n; r++ {
		serverOf[r] = r / coloc
		if gflops[r], err = s.AddResource(fmt.Sprintf("r%d.flops", r), cfg.GPU.PeakFLOPS*eff.GPUCompute); err != nil {
			return PipelineResult{}, err
		}
		if gmem[r], err = s.AddResource(fmt.Sprintf("r%d.mem", r), cfg.GPU.MemBandwidth*eff.GPUMemory); err != nil {
			return PipelineResult{}, err
		}
		if cfg.HasNVLink {
			if nvport[r], err = s.AddResource(fmt.Sprintf("r%d.nvlink", r), cfg.NVLinkBandwidth*eff.Network); err != nil {
				return PipelineResult{}, err
			}
		}
	}
	mediumRes := func(link hw.LinkClass, replica int) (ResourceID, error) {
		switch link {
		case hw.LinkEthernet:
			return nic[serverOf[replica]], nil
		case hw.LinkPCIe:
			return pcie[serverOf[replica]], nil
		case hw.LinkNVLink:
			if !cfg.HasNVLink {
				return 0, fmt.Errorf("simnet: workload %q needs NVLink", f.Name)
			}
			return nvport[replica], nil
		default:
			return 0, fmt.Errorf("simnet: unsupported weight medium %v", link)
		}
	}

	var finals []TaskID
	for r := 0; r < n; r++ {
		// Data load.
		data, err := s.AddTask(pcie[serverOf[r]], f.InputBytes)
		if err != nil {
			return PipelineResult{}, err
		}
		prevCompute := data
		perLayerFLOPs := f.FLOPs / float64(layers)
		perLayerMem := f.MemAccessBytes / float64(layers)
		for l := 0; l < layers; l++ {
			fl, err := s.AddTask(gflops[r], perLayerFLOPs, prevCompute)
			if err != nil {
				return PipelineResult{}, err
			}
			mem, err := s.AddTask(gmem[r], perLayerMem, fl)
			if err != nil {
				return PipelineResult{}, err
			}
			prevCompute = mem
			// The layer's weight chunk synchronizes concurrently with the
			// remaining layers: chain the chunk through the class's media.
			dep := mem
			for _, flow := range flows {
				res, err := mediumRes(flow.Link, r)
				if err != nil {
					return PipelineResult{}, err
				}
				chunk, err := s.AddTask(res, flow.Bytes/float64(layers), dep)
				if err != nil {
					return PipelineResult{}, err
				}
				dep = chunk
			}
			finals = append(finals, dep)
		}
		finals = append(finals, prevCompute)
	}
	barrier, err := s.AddTask(gflops[0], 0, finals...)
	if err != nil {
		return PipelineResult{}, err
	}
	makespan, err := s.Run()
	if err != nil {
		return PipelineResult{}, err
	}
	if _, err := s.FinishTime(barrier); err != nil {
		return PipelineResult{}, err
	}

	// Bounds from the serial phase simulation.
	serial, err := SimulateStep(cfg, eff, f, opt)
	if err != nil {
		return PipelineResult{}, err
	}
	sum := serial.Makespan
	compute := serial.ComputeFLOPs + serial.ComputeMem
	ideal := serial.DataIO
	if compute > ideal {
		ideal = compute
	}
	if serial.Weights > ideal {
		ideal = serial.Weights
	}
	lower := serial.DataIO
	if compute > lower {
		lower = compute
	}
	for _, wt := range serial.WeightsByLink {
		if wt > lower {
			lower = wt
		}
	}
	res := PipelineResult{Makespan: makespan, SerialTime: sum, IdealTime: ideal, LowerBound: lower}
	if sum-ideal > 1e-12 {
		alpha := (sum - makespan) / (sum - ideal)
		if alpha < 0 {
			alpha = 0
		}
		if alpha > 1 {
			alpha = 1
		}
		res.EffectiveAlpha = alpha
	}
	return res, nil
}
