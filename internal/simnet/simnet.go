// Package simnet is a small fluid discrete-event simulator used as the
// reproduction's testbed substitute: resources (GPU FLOP engines, memory
// systems, PCIe complexes, NICs, NVLink meshes) process task demand at a
// fixed rate shared equally among concurrently-active tasks (processor
// sharing), and tasks form a dependency DAG.
//
// Link contention emerges naturally: two replicas loading input over one
// server's PCIe resource each see half the bandwidth — the effect behind the
// data-I/O slowdown of PS->AllReduce-Local projection (Sec. III-C1).
package simnet

import (
	"errors"
	"fmt"
	"math"
)

// ResourceID identifies a resource in a Sim.
type ResourceID int

// TaskID identifies a task in a Sim.
type TaskID int

type resource struct {
	name string
	rate float64 // demand units per second
	busy float64 // accumulated seconds with >= 1 active task
}

type task struct {
	res       ResourceID
	remaining float64
	deps      []TaskID
	done      bool
	finish    float64
	started   bool
}

// Sim is a fluid simulator instance. The zero value is not usable; call New.
type Sim struct {
	resources []resource
	tasks     []task
	ran       bool
	now       float64
}

// New returns an empty simulator.
func New() *Sim { return &Sim{} }

// AddResource registers a resource with the given service rate (e.g. bytes/s
// for a link, FLOP/s for a GPU). Rate must be positive and finite.
func (s *Sim) AddResource(name string, rate float64) (ResourceID, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return 0, fmt.Errorf("simnet: resource %q rate must be positive and finite, got %v", name, rate)
	}
	s.resources = append(s.resources, resource{name: name, rate: rate})
	return ResourceID(len(s.resources) - 1), nil
}

// AddTask registers a task demanding the given amount of work on a resource,
// starting only after all deps complete. Zero-demand tasks are legal (pure
// synchronization points).
func (s *Sim) AddTask(res ResourceID, demand float64, deps ...TaskID) (TaskID, error) {
	if s.ran {
		return 0, errors.New("simnet: cannot add tasks after Run")
	}
	if int(res) < 0 || int(res) >= len(s.resources) {
		return 0, fmt.Errorf("simnet: resource %d out of range", res)
	}
	if demand < 0 || math.IsNaN(demand) || math.IsInf(demand, 0) {
		return 0, fmt.Errorf("simnet: task demand must be finite and >= 0, got %v", demand)
	}
	for _, d := range deps {
		if int(d) < 0 || int(d) >= len(s.tasks) {
			return 0, fmt.Errorf("simnet: dependency %d out of range", d)
		}
	}
	s.tasks = append(s.tasks, task{
		res: res, remaining: demand, deps: append([]TaskID(nil), deps...),
	})
	return TaskID(len(s.tasks) - 1), nil
}

// Run executes the simulation to completion and returns the makespan.
// It can be called once per Sim.
func (s *Sim) Run() (float64, error) {
	if s.ran {
		return 0, errors.New("simnet: Run called twice")
	}
	s.ran = true
	if len(s.tasks) == 0 {
		return 0, nil
	}

	pending := len(s.tasks)
	for pending > 0 {
		// Collect ready tasks and per-resource active counts.
		active := make(map[ResourceID]int)
		ready := ready(s.tasks)
		if len(ready) == 0 {
			return 0, errors.New("simnet: dependency cycle or deadlock detected")
		}
		for _, ti := range ready {
			active[s.tasks[ti].res]++
		}
		// Zero-demand ready tasks complete immediately.
		completedZero := false
		for _, ti := range ready {
			if s.tasks[ti].remaining == 0 {
				s.tasks[ti].done = true
				s.tasks[ti].finish = s.now
				pending--
				completedZero = true
			}
		}
		if completedZero {
			continue
		}
		// Time to next completion under equal sharing.
		dt := math.Inf(1)
		for _, ti := range ready {
			t := &s.tasks[ti]
			share := s.resources[t.res].rate / float64(active[t.res])
			if d := t.remaining / share; d < dt {
				dt = d
			}
		}
		// Advance: drain demand, accumulate busy time.
		for res := range active {
			s.resources[res].busy += dt
		}
		s.now += dt
		const eps = 1e-12
		for _, ti := range ready {
			t := &s.tasks[ti]
			share := s.resources[t.res].rate / float64(active[t.res])
			t.remaining -= share * dt
			if t.remaining <= eps*share*dt+1e-30 || t.remaining < 0 {
				t.remaining = 0
				t.done = true
				t.finish = s.now
				pending--
			}
		}
	}
	return s.now, nil
}

// ready returns indices of tasks whose dependencies are all done and which
// are not themselves done.
func ready(tasks []task) []int {
	var out []int
	for i := range tasks {
		t := &tasks[i]
		if t.done {
			continue
		}
		ok := true
		for _, d := range t.deps {
			if !tasks[d].done {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// FinishTime returns the completion time of a task after Run.
func (s *Sim) FinishTime(t TaskID) (float64, error) {
	if !s.ran {
		return 0, errors.New("simnet: FinishTime before Run")
	}
	if int(t) < 0 || int(t) >= len(s.tasks) {
		return 0, fmt.Errorf("simnet: task %d out of range", t)
	}
	if !s.tasks[t].done {
		return 0, fmt.Errorf("simnet: task %d did not complete", t)
	}
	return s.tasks[t].finish, nil
}

// BusyTime returns the accumulated busy seconds of a resource after Run.
func (s *Sim) BusyTime(r ResourceID) (float64, error) {
	if !s.ran {
		return 0, errors.New("simnet: BusyTime before Run")
	}
	if int(r) < 0 || int(r) >= len(s.resources) {
		return 0, fmt.Errorf("simnet: resource %d out of range", r)
	}
	return s.resources[r].busy, nil
}

// Utilization returns busy time divided by the makespan.
func (s *Sim) Utilization(r ResourceID) (float64, error) {
	busy, err := s.BusyTime(r)
	if err != nil {
		return 0, err
	}
	if s.now == 0 {
		return 0, nil
	}
	return busy / s.now, nil
}
