package simnet

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/hw"
	"repro/internal/workload"
)

// StepResult reports one simulated training step of a workload.
type StepResult struct {
	// Makespan is the simulated wall-clock step time.
	Makespan float64
	// DataIO, ComputeFLOPs, ComputeMem and per-link weight times are the
	// phase durations (the simulator runs phases back to back, matching the
	// paper's non-overlap framework).
	DataIO, ComputeFLOPs, ComputeMem float64
	WeightsByLink                    map[hw.LinkClass]float64
	// Weights is the total weight-communication time.
	Weights float64
	// PCIeUtilization is the busy fraction of the first server's PCIe
	// complex, a proxy for the Table VI "PCIe" row.
	PCIeUtilization float64
}

// StepOptions carries fault/heterogeneity injection knobs for SimulateStep.
type StepOptions struct {
	// SlowReplica, when SlowFactor > 1, identifies the replica whose GPU
	// compute and memory rates are divided by SlowFactor — a straggler.
	// Synchronous training gates every phase barrier on the slowest
	// replica, which is what the injection exposes.
	SlowReplica int
	// SlowFactor >= 1 is the slowdown of the straggler (1 = no straggler).
	SlowFactor float64
}

// Validate checks the options against the workload.
func (o StepOptions) Validate(cNodes int) error {
	if o.SlowFactor == 0 {
		return nil // zero value: no straggler
	}
	if o.SlowFactor < 1 {
		return fmt.Errorf("simnet: SlowFactor must be >= 1, got %v", o.SlowFactor)
	}
	if o.SlowReplica < 0 || o.SlowReplica >= cNodes {
		return fmt.Errorf("simnet: SlowReplica %d out of range [0,%d)", o.SlowReplica, cNodes)
	}
	return nil
}

// SimulateStep builds and runs the task graph of one training step of the
// workload on a cluster built from cfg: per-server PCIe and NIC resources,
// per-replica GPU compute/memory/NVLink resources, phases
// load -> compute(FLOPs) -> compute(mem) -> weight sync per medium, with
// barriers between phases (non-overlap). Contention (multiple replicas on
// one server's PCIe or NIC) emerges from resource sharing rather than an
// explicit factor.
func SimulateStep(cfg hw.Config, eff workload.Efficiency, f workload.Features, opt arch.Options) (StepResult, error) {
	return SimulateStepOpts(cfg, eff, f, opt, StepOptions{})
}

// SimulateStepOpts is SimulateStep with fault-injection options.
func SimulateStepOpts(cfg hw.Config, eff workload.Efficiency, f workload.Features, opt arch.Options, sopt StepOptions) (StepResult, error) {
	if err := cfg.Validate(); err != nil {
		return StepResult{}, err
	}
	if err := eff.Validate(); err != nil {
		return StepResult{}, err
	}
	if err := f.Validate(); err != nil {
		return StepResult{}, err
	}
	if err := sopt.Validate(f.CNodes); err != nil {
		return StepResult{}, err
	}
	coloc, err := arch.ColocatedReplicas(f, cfg.GPUsPerServer)
	if err != nil {
		return StepResult{}, err
	}
	servers, err := arch.ServersUsed(f, cfg.GPUsPerServer)
	if err != nil {
		return StepResult{}, err
	}
	flows, err := arch.WeightFlows(f, opt)
	if err != nil {
		return StepResult{}, err
	}

	s := New()
	// Per-server shared resources.
	pcie := make([]ResourceID, servers)
	nic := make([]ResourceID, servers)
	for i := 0; i < servers; i++ {
		if pcie[i], err = s.AddResource(fmt.Sprintf("s%d.pcie", i), cfg.PCIeBandwidth*eff.PCIe); err != nil {
			return StepResult{}, err
		}
		if nic[i], err = s.AddResource(fmt.Sprintf("s%d.nic", i), cfg.EthernetBandwidth*eff.Network); err != nil {
			return StepResult{}, err
		}
	}
	// Per-replica resources.
	n := f.CNodes
	gflops := make([]ResourceID, n)
	gmem := make([]ResourceID, n)
	nvport := make([]ResourceID, n)
	serverOf := make([]int, n)
	for r := 0; r < n; r++ {
		serverOf[r] = r / coloc
		slow := 1.0
		if sopt.SlowFactor > 1 && r == sopt.SlowReplica {
			slow = sopt.SlowFactor
		}
		if gflops[r], err = s.AddResource(fmt.Sprintf("r%d.flops", r), cfg.GPU.PeakFLOPS*eff.GPUCompute/slow); err != nil {
			return StepResult{}, err
		}
		if gmem[r], err = s.AddResource(fmt.Sprintf("r%d.mem", r), cfg.GPU.MemBandwidth*eff.GPUMemory/slow); err != nil {
			return StepResult{}, err
		}
		if cfg.HasNVLink {
			if nvport[r], err = s.AddResource(fmt.Sprintf("r%d.nvlink", r), cfg.NVLinkBandwidth*eff.Network); err != nil {
				return StepResult{}, err
			}
		}
	}

	// Phase 1: input data load, all replicas concurrently on their server's
	// PCIe complex.
	prevPhase := make([]TaskID, 0, n)
	for r := 0; r < n; r++ {
		t, err := s.AddTask(pcie[serverOf[r]], f.InputBytes)
		if err != nil {
			return StepResult{}, err
		}
		prevPhase = append(prevPhase, t)
	}
	dataBarrier, err := s.AddTask(gflops[0], 0, prevPhase...)
	if err != nil {
		return StepResult{}, err
	}

	// Phase 2: compute-bound ops.
	prevPhase = prevPhase[:0]
	for r := 0; r < n; r++ {
		t, err := s.AddTask(gflops[r], f.FLOPs, dataBarrier)
		if err != nil {
			return StepResult{}, err
		}
		prevPhase = append(prevPhase, t)
	}
	flopsBarrier, err := s.AddTask(gflops[0], 0, prevPhase...)
	if err != nil {
		return StepResult{}, err
	}

	// Phase 3: memory-bound ops.
	prevPhase = prevPhase[:0]
	for r := 0; r < n; r++ {
		t, err := s.AddTask(gmem[r], f.MemAccessBytes, flopsBarrier)
		if err != nil {
			return StepResult{}, err
		}
		prevPhase = append(prevPhase, t)
	}
	barrier := flopsBarrier
	memBarrier, err := s.AddTask(gflops[0], 0, prevPhase...)
	if err != nil {
		return StepResult{}, err
	}
	barrier = memBarrier

	// Phases 4+: weight synchronization, one phase per medium.
	mediumBarriers := make([]struct {
		link hw.LinkClass
		id   TaskID
	}, 0, len(flows))
	for _, fl := range flows {
		prevPhase = prevPhase[:0]
		switch fl.Link {
		case hw.LinkEthernet:
			if f.Class == workload.AllReduceCluster {
				// Hierarchical collective: one aggregated stream per server.
				for sv := 0; sv < servers; sv++ {
					t, err := s.AddTask(nic[sv], fl.Bytes, barrier)
					if err != nil {
						return StepResult{}, err
					}
					prevPhase = append(prevPhase, t)
				}
			} else {
				// PS pull/push: every replica streams over its server NIC.
				for r := 0; r < n; r++ {
					t, err := s.AddTask(nic[serverOf[r]], fl.Bytes, barrier)
					if err != nil {
						return StepResult{}, err
					}
					prevPhase = append(prevPhase, t)
				}
			}
		case hw.LinkPCIe:
			for r := 0; r < n; r++ {
				t, err := s.AddTask(pcie[serverOf[r]], fl.Bytes, barrier)
				if err != nil {
					return StepResult{}, err
				}
				prevPhase = append(prevPhase, t)
			}
		case hw.LinkNVLink:
			if !cfg.HasNVLink {
				return StepResult{}, fmt.Errorf("simnet: workload %q needs NVLink", f.Name)
			}
			for r := 0; r < n; r++ {
				t, err := s.AddTask(nvport[r], fl.Bytes, barrier)
				if err != nil {
					return StepResult{}, err
				}
				prevPhase = append(prevPhase, t)
			}
		default:
			return StepResult{}, fmt.Errorf("simnet: unsupported weight medium %v", fl.Link)
		}
		b, err := s.AddTask(gflops[0], 0, prevPhase...)
		if err != nil {
			return StepResult{}, err
		}
		barrier = b
		mediumBarriers = append(mediumBarriers, struct {
			link hw.LinkClass
			id   TaskID
		}{fl.Link, b})
	}

	makespan, err := s.Run()
	if err != nil {
		return StepResult{}, err
	}

	res := StepResult{Makespan: makespan, WeightsByLink: map[hw.LinkClass]float64{}}
	tData, err := s.FinishTime(dataBarrier)
	if err != nil {
		return StepResult{}, err
	}
	tFlops, err := s.FinishTime(flopsBarrier)
	if err != nil {
		return StepResult{}, err
	}
	tMem, err := s.FinishTime(memBarrier)
	if err != nil {
		return StepResult{}, err
	}
	res.DataIO = tData
	res.ComputeFLOPs = tFlops - tData
	res.ComputeMem = tMem - tFlops
	prev := tMem
	for _, mb := range mediumBarriers {
		ft, err := s.FinishTime(mb.id)
		if err != nil {
			return StepResult{}, err
		}
		res.WeightsByLink[mb.link] += ft - prev
		res.Weights += ft - prev
		prev = ft
	}
	util, err := s.Utilization(pcie[0])
	if err != nil {
		return StepResult{}, err
	}
	res.PCIeUtilization = util
	return res, nil
}
