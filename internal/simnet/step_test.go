package simnet

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/workload"
)

func TestSimulateStepValidation(t *testing.T) {
	cfg := hw.Baseline()
	eff := workload.DefaultEfficiency()
	good := workload.Features{
		Name: "ok", Class: workload.PSWorker, CNodes: 4, BatchSize: 8,
		FLOPs: 1e12, MemAccessBytes: 1e9, InputBytes: 1e6,
		DenseWeightBytes: 100 * hw.MB,
	}
	bad := good
	bad.CNodes = 0
	if _, err := SimulateStep(cfg, eff, bad, arch.DefaultOptions()); err == nil {
		t.Error("expected error for invalid features")
	}
	badCfg := cfg
	badCfg.GPUsPerServer = 0
	if _, err := SimulateStep(badCfg, eff, good, arch.DefaultOptions()); err == nil {
		t.Error("expected error for invalid config")
	}
	if _, err := SimulateStep(cfg, workload.Efficiency{}, good, arch.DefaultOptions()); err == nil {
		t.Error("expected error for invalid efficiency")
	}
	// AllReduce on non-NVLink servers must fail.
	ar := good
	ar.Class = workload.AllReduceLocal
	ar.CNodes = 8
	if _, err := SimulateStep(hw.BaselineNoNVLink(), eff, ar, arch.DefaultOptions()); err == nil {
		t.Error("expected error for AllReduce without NVLink")
	}
	if _, err := SimulateStep(cfg, eff, good, arch.Options{SparseAccessFraction: 7}); err == nil {
		t.Error("expected error for bad arch options")
	}
}

// The fluid simulator and the analytical model agree for every zoo workload:
// identical bandwidth/efficiency assumptions and phase structure must give
// matching component times (this is the consistency check behind using the
// analytical model for cluster-scale analysis).
func TestSimulatorMatchesAnalyticalModel(t *testing.T) {
	cfg := hw.Testbed()
	eff := workload.DefaultEfficiency()
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range workload.ZooNames() {
		cs, err := workload.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		simR, err := SimulateStep(cfg, eff, cs.Features, arch.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		anaR, err := m.Breakdown(cs.Features)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		close := func(label string, got, want float64) {
			t.Helper()
			if want == 0 {
				if got > 1e-12 {
					t.Errorf("%s %s = %v, want 0", name, label, got)
				}
				return
			}
			if math.Abs(got-want)/want > 0.02 {
				t.Errorf("%s %s: sim %v vs model %v", name, label, got, want)
			}
		}
		close("dataIO", simR.DataIO, anaR.DataIO)
		close("computeFLOPs", simR.ComputeFLOPs, anaR.ComputeFLOPs)
		close("computeMem", simR.ComputeMem, anaR.ComputeMem)
		close("weights", simR.Weights, anaR.Weights)
		close("total", simR.Makespan, anaR.Total())
	}
}

// PCIe contention emerges from resource sharing: doubling co-located
// replicas doubles the data phase.
func TestEmergentPCIeContention(t *testing.T) {
	cfg := hw.Baseline()
	eff := workload.DefaultEfficiency()
	mk := func(n int) float64 {
		f := workload.Features{
			Name: "c", Class: workload.AllReduceLocal, CNodes: n, BatchSize: 8,
			FLOPs: 1e9, MemAccessBytes: 1e6, InputBytes: 100 * hw.MB,
			DenseWeightBytes: hw.MB,
		}
		r, err := SimulateStep(cfg, eff, f, arch.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return r.DataIO
	}
	d2, d4 := mk(2), mk(4)
	if math.Abs(d4/d2-2) > 1e-6 {
		t.Errorf("data phase ratio 4 vs 2 replicas = %v, want 2 (shared PCIe)", d4/d2)
	}
}

// PS/Worker places each worker on its own server: no NIC contention, and
// the Ethernet phase matches Sw/(B*eff) regardless of replica count.
func TestPSWorkerNoNICContention(t *testing.T) {
	cfg := hw.Baseline()
	eff := workload.DefaultEfficiency()
	sw := 1 * hw.GB
	mk := func(n int) float64 {
		f := workload.Features{
			Name: "ps", Class: workload.PSWorker, CNodes: n, BatchSize: 8,
			FLOPs: 1e9, MemAccessBytes: 1e6, InputBytes: 1e3,
			DenseWeightBytes: hw.MB, WeightTrafficBytes: sw,
		}
		r, err := SimulateStep(cfg, eff, f, arch.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return r.WeightsByLink[hw.LinkEthernet]
	}
	want := sw / (hw.Gbps(25) * 0.7)
	for _, n := range []int{1, 4, 32} {
		if got := mk(n); math.Abs(got-want)/want > 1e-6 {
			t.Errorf("Ethernet phase with %d workers = %v, want %v", n, got, want)
		}
	}
}

// AllReduce-Cluster sends one aggregated stream per server over each NIC.
func TestARClusterHierarchicalEthernet(t *testing.T) {
	cfg := hw.Baseline()
	eff := workload.DefaultEfficiency()
	sw := 2 * hw.GB
	f := workload.Features{
		Name: "arc", Class: workload.AllReduceCluster, CNodes: 16, BatchSize: 8,
		FLOPs: 1e9, MemAccessBytes: 1e6, InputBytes: 1e3,
		DenseWeightBytes: hw.MB, WeightTrafficBytes: sw,
	}
	r, err := SimulateStep(cfg, eff, f, arch.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := sw / (hw.Gbps(25) * 0.7)
	got := r.WeightsByLink[hw.LinkEthernet]
	if math.Abs(got-want)/want > 1e-6 {
		t.Errorf("ARC Ethernet phase = %v, want %v (one stream per NIC)", got, want)
	}
	if r.WeightsByLink[hw.LinkNVLink] <= 0 {
		t.Error("ARC should also cross NVLink")
	}
}

func TestPCIeUtilizationReported(t *testing.T) {
	cfg := hw.Baseline()
	eff := workload.DefaultEfficiency()
	f := workload.Features{
		Name: "u", Class: workload.OneWorkerOneGPU, CNodes: 1, BatchSize: 8,
		FLOPs: 1e12, MemAccessBytes: 1e9, InputBytes: 1 * hw.GB,
	}
	r, err := SimulateStep(cfg, eff, f, arch.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.PCIeUtilization <= 0 || r.PCIeUtilization > 1 {
		t.Errorf("PCIe utilization = %v, want in (0,1]", r.PCIeUtilization)
	}
}
