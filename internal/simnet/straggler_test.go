package simnet

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/hw"
	"repro/internal/workload"
)

func stragglerJob(class workload.Class, n int) workload.Features {
	return workload.Features{
		Name: "strag", Class: class, CNodes: n, BatchSize: 8,
		FLOPs: 5e12, MemAccessBytes: 5e9, InputBytes: 1e6,
		DenseWeightBytes: 100 * hw.MB,
	}
}

func TestStepOptionsValidate(t *testing.T) {
	if err := (StepOptions{}).Validate(4); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
	if err := (StepOptions{SlowFactor: 0.5}).Validate(4); err == nil {
		t.Error("expected error for factor < 1")
	}
	if err := (StepOptions{SlowFactor: 2, SlowReplica: 4}).Validate(4); err == nil {
		t.Error("expected error for replica out of range")
	}
	if err := (StepOptions{SlowFactor: 2, SlowReplica: -1}).Validate(4); err == nil {
		t.Error("expected error for negative replica")
	}
	f := stragglerJob(workload.AllReduceLocal, 4)
	if _, err := SimulateStepOpts(hw.Baseline(), workload.DefaultEfficiency(), f,
		arch.DefaultOptions(), StepOptions{SlowFactor: 0.1}); err == nil {
		t.Error("SimulateStepOpts should reject bad options")
	}
}

// Synchronous phases gate on the straggler: the compute phase stretches by
// exactly the slowdown factor.
func TestStragglerGatesComputePhase(t *testing.T) {
	cfg := hw.Baseline()
	eff := workload.DefaultEfficiency()
	f := stragglerJob(workload.AllReduceLocal, 4)
	base, err := SimulateStep(cfg, eff, f, arch.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SimulateStepOpts(cfg, eff, f, arch.DefaultOptions(),
		StepOptions{SlowReplica: 2, SlowFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slow.ComputeFLOPs/base.ComputeFLOPs-3) > 1e-6 {
		t.Errorf("compute phase stretch = %v, want 3", slow.ComputeFLOPs/base.ComputeFLOPs)
	}
	if math.Abs(slow.ComputeMem/base.ComputeMem-3) > 1e-6 {
		t.Errorf("memory phase stretch = %v, want 3", slow.ComputeMem/base.ComputeMem)
	}
	// Data and weight phases untouched (straggler is compute-only).
	if math.Abs(slow.DataIO-base.DataIO) > 1e-12 {
		t.Error("data phase should not change")
	}
	if math.Abs(slow.Weights-base.Weights) > 1e-12 {
		t.Error("weight phase should not change")
	}
}

// The end-to-end straggler penalty is bounded by the compute share: a
// communication-bound PS job suffers less from a compute straggler than a
// compute-bound one.
func TestStragglerPenaltyDependsOnComputeShare(t *testing.T) {
	cfg := hw.Baseline()
	eff := workload.DefaultEfficiency()
	penalty := func(f workload.Features) float64 {
		base, err := SimulateStep(cfg, eff, f, arch.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		slow, err := SimulateStepOpts(cfg, eff, f, arch.DefaultOptions(),
			StepOptions{SlowReplica: 0, SlowFactor: 2})
		if err != nil {
			t.Fatal(err)
		}
		return slow.Makespan / base.Makespan
	}
	commBound := stragglerJob(workload.PSWorker, 8)
	commBound.WeightTrafficBytes = 50 * hw.GB
	computeBound := stragglerJob(workload.PSWorker, 8)
	computeBound.FLOPs = 50e12
	computeBound.WeightTrafficBytes = 10 * hw.MB
	pComm, pComp := penalty(commBound), penalty(computeBound)
	if pComp <= pComm {
		t.Errorf("compute-bound straggler penalty (%v) should exceed comm-bound (%v)", pComp, pComm)
	}
	if pComp < 1.5 || pComp > 2.0 {
		t.Errorf("compute-bound penalty = %v, want near 2", pComp)
	}
	if pComm > 1.2 {
		t.Errorf("comm-bound penalty = %v, want near 1", pComm)
	}
}
