package simnet

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/hw"
	"repro/internal/workload"
)

func pipelineJob() workload.Features {
	return workload.Features{
		Name: "pipe", Class: workload.PSWorker, CNodes: 8, BatchSize: 64,
		FLOPs: 5e12, MemAccessBytes: 5e9, InputBytes: 1e6,
		DenseWeightBytes: 1e9, WeightTrafficBytes: 3e9,
	}
}

func TestPipelineValidation(t *testing.T) {
	cfg := hw.Baseline()
	eff := workload.DefaultEfficiency()
	if _, err := SimulatePipelinedStep(cfg, eff, pipelineJob(), arch.DefaultOptions(), 0); err == nil {
		t.Error("expected error for zero layers")
	}
	bad := pipelineJob()
	bad.CNodes = 0
	if _, err := SimulatePipelinedStep(cfg, eff, bad, arch.DefaultOptions(), 4); err == nil {
		t.Error("expected error for invalid features")
	}
	badCfg := cfg
	badCfg.PCIeBandwidth = 0
	if _, err := SimulatePipelinedStep(badCfg, eff, pipelineJob(), arch.DefaultOptions(), 4); err == nil {
		t.Error("expected error for invalid config")
	}
	if _, err := SimulatePipelinedStep(cfg, workload.Efficiency{}, pipelineJob(), arch.DefaultOptions(), 4); err == nil {
		t.Error("expected error for invalid efficiency")
	}
	ar := pipelineJob()
	ar.Class = workload.AllReduceLocal
	if _, err := SimulatePipelinedStep(hw.BaselineNoNVLink(), eff, ar, arch.DefaultOptions(), 4); err == nil {
		t.Error("expected error for NVLink class on non-NVLink config")
	}
}

// A single layer cannot overlap anything: the pipelined makespan equals the
// serial phase sum (within fluid-simulation tolerance).
func TestPipelineSingleLayerIsSerial(t *testing.T) {
	cfg := hw.Baseline()
	eff := workload.DefaultEfficiency()
	r, err := SimulatePipelinedStep(cfg, eff, pipelineJob(), arch.DefaultOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := (r.SerialTime - r.Makespan) / r.SerialTime; rel > 0.02 {
		t.Errorf("1-layer pipeline gained %.1f%%, want ~0", rel*100)
	}
	if r.EffectiveAlpha > 0.05 {
		t.Errorf("1-layer alpha = %v, want ~0", r.EffectiveAlpha)
	}
}

// More layers expose more overlap: makespan is monotone non-increasing in
// the layer count, bounded below by the ideal time.
func TestPipelineMonotoneInLayers(t *testing.T) {
	cfg := hw.Baseline()
	eff := workload.DefaultEfficiency()
	prev := -1.0
	for _, layers := range []int{1, 2, 4, 16, 64} {
		r, err := SimulatePipelinedStep(cfg, eff, pipelineJob(), arch.DefaultOptions(), layers)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && r.Makespan > prev*1.001 {
			t.Errorf("makespan grew with layers: %v -> %v at L=%d", prev, r.Makespan, layers)
		}
		if r.Makespan < r.LowerBound-1e-9 {
			t.Errorf("makespan %v beat the per-resource lower bound %v", r.Makespan, r.LowerBound)
		}
		if r.LowerBound > r.IdealTime+1e-9 {
			t.Errorf("lower bound %v exceeds the paper ideal %v", r.LowerBound, r.IdealTime)
		}
		if r.Makespan > r.SerialTime*1.001 {
			t.Errorf("pipelined makespan %v exceeds serial %v", r.Makespan, r.SerialTime)
		}
		prev = r.Makespan
	}
}

// With many layers, a balanced comm/compute job approaches the ideal bound:
// effective alpha well above zero.
func TestPipelineApproachesIdeal(t *testing.T) {
	cfg := hw.Baseline()
	eff := workload.DefaultEfficiency()
	r, err := SimulatePipelinedStep(cfg, eff, pipelineJob(), arch.DefaultOptions(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.EffectiveAlpha < 0.5 {
		t.Errorf("64-layer alpha = %v, want > 0.5", r.EffectiveAlpha)
	}
}

// 1w1g jobs have no weight traffic to hide; alpha stays small even with
// many layers (only data I/O could overlap, and it precedes compute here).
func TestPipelineNoCommNoGain(t *testing.T) {
	cfg := hw.Baseline()
	eff := workload.DefaultEfficiency()
	f := workload.Features{
		Name: "solo", Class: workload.OneWorkerOneGPU, CNodes: 1, BatchSize: 8,
		FLOPs: 5e12, MemAccessBytes: 5e9, InputBytes: 1e5,
	}
	r, err := SimulatePipelinedStep(cfg, eff, f, arch.DefaultOptions(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if gain := (r.SerialTime - r.Makespan) / r.SerialTime; gain > 0.02 {
		t.Errorf("no-comm job gained %.1f%% from pipelining, want ~0", gain*100)
	}
}
