package pai_test

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"

	pai "repro"
)

func engineTestJob() pai.Features {
	return pai.Features{
		Name: "reco", Class: pai.PSWorker, CNodes: 16, BatchSize: 512,
		FLOPs: 0.4e12, MemAccessBytes: 12e9, InputBytes: 80e6,
		DenseWeightBytes: 1.5e9, WeightTrafficBytes: 2.2e9,
	}
}

func TestEngineOptionCombinations(t *testing.T) {
	job := engineTestJob()
	lowComm := pai.DefaultEfficiency()
	lowComm.Network = 0.5

	cases := []struct {
		name    string
		opts    []pai.Option
		check   func(t *testing.T, e *pai.Engine, total float64)
		wantErr bool
	}{
		{name: "defaults", opts: nil,
			check: func(t *testing.T, e *pai.Engine, total float64) {
				if e.Backend() != "analytical" {
					t.Errorf("default backend = %q", e.Backend())
				}
				if e.Parallelism() != runtime.GOMAXPROCS(0) {
					t.Errorf("default parallelism = %d", e.Parallelism())
				}
			}},
		{name: "testbed config", opts: []pai.Option{pai.WithConfig(pai.TestbedConfig())},
			check: func(t *testing.T, e *pai.Engine, total float64) {
				if e.Config().GPU.Name != pai.TestbedConfig().GPU.Name {
					t.Error("config option not applied")
				}
			}},
		{name: "ideal overlap", opts: []pai.Option{pai.WithOverlap(pai.OverlapIdeal)},
			check: func(t *testing.T, e *pai.Engine, total float64) {
				if e.Overlap() != pai.OverlapIdeal {
					t.Error("overlap option not applied")
				}
			}},
		{name: "partial overlap", opts: []pai.Option{pai.WithOverlapAlpha(0.5)},
			check: func(t *testing.T, e *pai.Engine, total float64) {
				if e.Overlap() != pai.OverlapPartial {
					t.Error("WithOverlapAlpha should switch to OverlapPartial")
				}
			}},
		{name: "efficiency", opts: []pai.Option{pai.WithEfficiency(lowComm)},
			check: func(t *testing.T, e *pai.Engine, total float64) {
				if e.Efficiency().Network != 0.5 {
					t.Error("efficiency option not applied")
				}
			}},
		{name: "roofline backend", opts: []pai.Option{pai.WithBackend("roofline")},
			check: func(t *testing.T, e *pai.Engine, total float64) {
				if e.Backend() != "roofline" {
					t.Errorf("backend = %q", e.Backend())
				}
			}},
		{name: "parallelism", opts: []pai.Option{pai.WithParallelism(2)},
			check: func(t *testing.T, e *pai.Engine, total float64) {
				if e.Parallelism() != 2 {
					t.Errorf("parallelism = %d", e.Parallelism())
				}
			}},
		{name: "combined",
			opts: []pai.Option{
				pai.WithConfig(pai.BaselineConfig()),
				pai.WithOverlap(pai.OverlapIdeal),
				pai.WithEfficiency(pai.DefaultEfficiency()),
				pai.WithBackend("analytical"),
				pai.WithParallelism(4),
			},
			check: func(t *testing.T, e *pai.Engine, total float64) {
				if e.Backend() != "analytical" || e.Parallelism() != 4 || e.Overlap() != pai.OverlapIdeal {
					t.Error("combined options not applied")
				}
			}},
		{name: "unknown backend", opts: []pai.Option{pai.WithBackend("no-such")}, wantErr: true},
		{name: "empty backend", opts: []pai.Option{pai.WithBackend("")}, wantErr: true},
		{name: "zero parallelism", opts: []pai.Option{pai.WithParallelism(0)}, wantErr: true},
		{name: "bad alpha", opts: []pai.Option{pai.WithOverlapAlpha(1.5)}, wantErr: true},
		{name: "bad config", opts: []pai.Option{pai.WithConfig(pai.Config{})}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := pai.New(tc.opts...)
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected construction error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			total, err := e.StepTime(job)
			if err != nil {
				t.Fatal(err)
			}
			if total <= 0 {
				t.Errorf("step time = %v, want > 0", total)
			}
			tc.check(t, e, total)
		})
	}
}

func TestEngineUnknownBackendErrorListsNames(t *testing.T) {
	_, err := pai.New(pai.WithBackend("no-such"))
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "analytical") {
		t.Errorf("error should list registered backends, got %v", err)
	}
	names := pai.Backends()
	if len(names) < 2 {
		t.Errorf("expected at least analytical+roofline registered, got %v", names)
	}
}

func TestZeroValueEngine(t *testing.T) {
	var e pai.Engine
	total, err := e.StepTime(engineTestJob())
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Errorf("zero-value engine step time = %v", total)
	}
	if e.Backend() != "analytical" {
		t.Errorf("zero-value backend = %q", e.Backend())
	}
	if e.Parallelism() < 1 {
		t.Errorf("zero-value parallelism = %d", e.Parallelism())
	}
	// Accessors agree with an explicitly constructed default engine.
	d, err := pai.New()
	if err != nil {
		t.Fatal(err)
	}
	if e.Config().GPU.Name != d.Config().GPU.Name {
		t.Error("zero-value config should be the baseline")
	}
}

func TestEngineConstructionPathsAgree(t *testing.T) {
	// The zero-value defaults and an engine built with every default spelled
	// out must evaluate identically — a regression hook on config plumbing
	// now that the pre-Engine free-function model path is gone.
	e, err := pai.New()
	if err != nil {
		t.Fatal(err)
	}
	d, err := pai.New(
		pai.WithConfig(pai.BaselineConfig()),
		pai.WithEfficiency(pai.DefaultEfficiency()),
		pai.WithOverlap(pai.OverlapNone),
		pai.WithBackend("analytical"),
	)
	if err != nil {
		t.Fatal(err)
	}
	job := engineTestJob()
	et, err := e.Evaluate(job)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := d.Evaluate(job)
	if err != nil {
		t.Fatal(err)
	}
	if et.Total() != dt.Total() {
		t.Errorf("engine breakdown differs across construction paths: %v vs %v", et.Total(), dt.Total())
	}
	eth, err := e.Throughput(job)
	if err != nil {
		t.Fatal(err)
	}
	dth, err := d.Throughput(job)
	if err != nil {
		t.Fatal(err)
	}
	if eth != dth {
		t.Errorf("throughput mismatch: %v vs %v", eth, dth)
	}
}

func TestEngineEvaluateBatch(t *testing.T) {
	p := pai.DefaultTraceParams()
	p.NumJobs = 500
	trace, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := pai.New(pai.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := e.EvaluateBatch(context.Background(), trace.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(trace.Jobs) {
		t.Fatalf("got %d results, want %d", len(batch), len(trace.Jobs))
	}
	// Batch results match serial per-job evaluation, in order.
	for i, j := range trace.Jobs {
		serial, err := e.Evaluate(j)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Total() != serial.Total() {
			t.Fatalf("job %d: batch %v != serial %v", i, batch[i].Total(), serial.Total())
		}
	}
}

func TestEngineEvaluateBatchCancellation(t *testing.T) {
	p := pai.DefaultTraceParams()
	p.NumJobs = 2000
	trace, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := pai.New(pai.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.EvaluateBatch(ctx, trace.Jobs); err == nil {
		t.Fatal("expected cancellation error")
	}

	// Cancel concurrently with the batch: either the batch finishes first
	// (returning results) or the cancellation wins (returning ctx.Err);
	// both must be race-free under -race.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.EvaluateBatch(ctx2, trace.Jobs)
		done <- err
	}()
	cancel2()
	<-done
}

func TestEngineAnalysisPipelines(t *testing.T) {
	p := pai.DefaultTraceParams()
	p.NumJobs = 400
	trace, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := pai.New(pai.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	rows, err := e.Breakdowns(ctx, trace.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no breakdown rows")
	}
	overall, err := e.OverallBreakdown(ctx, trace.Jobs, pai.CNodeLevel)
	if err != nil {
		t.Fatal(err)
	}
	if overall[pai.CompWeights] <= 0 {
		t.Error("cNode-level weight share should be positive")
	}

	ps := pai.FilterClass(trace.Jobs, pai.PSWorker)
	results, err := e.ProjectAll(ctx, ps, pai.ToAllReduceLocal)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ps) {
		t.Errorf("projected %d jobs, want %d", len(results), len(ps))
	}
	sum, err := pai.SummarizeProjection(results)
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != len(ps) {
		t.Errorf("summary covers %d, want %d", sum.N, len(ps))
	}

	panel, err := e.HardwareSweep(ctx, ps, "PS/Worker")
	if err != nil {
		t.Fatal(err)
	}
	if len(panel.Series) != 4 {
		t.Errorf("sweep panel has %d series, want 4", len(panel.Series))
	}
}

func TestEngineWithDerivation(t *testing.T) {
	base, err := pai.New(pai.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := base.With(pai.WithOverlap(pai.OverlapIdeal))
	if err != nil {
		t.Fatal(err)
	}
	if base.Overlap() != pai.OverlapNone {
		t.Error("With mutated the receiver")
	}
	if ideal.Overlap() != pai.OverlapIdeal || ideal.Parallelism() != 2 {
		t.Error("derived engine lost settings")
	}
	job := engineTestJob()
	t0, err := base.StepTime(job)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := ideal.StepTime(job)
	if err != nil {
		t.Fatal(err)
	}
	if t1 >= t0 {
		t.Errorf("ideal overlap %v should beat non-overlap %v", t1, t0)
	}
}

func TestEngineRooflineBackend(t *testing.T) {
	// Memory-bound recommender: under the classic roofline the memory
	// stream binds, the compute stream hides beneath it, and the device is
	// charged once — so total compute time is max(tFLOPs, tMem), strictly
	// below the analytical model's sequential sum.
	cs, err := pai.LookupCaseStudy("Multi-Interests")
	if err != nil {
		t.Fatal(err)
	}
	ana, err := pai.New(pai.WithConfig(pai.TestbedConfig()))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := ana.With(pai.WithBackend("roofline"))
	if err != nil {
		t.Fatal(err)
	}
	ta, err := ana.Evaluate(cs.Features)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rf.Evaluate(cs.Features)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ComputeMem != ta.ComputeMem || tr.ComputeFLOPs != 0 {
		t.Errorf("Multi-Interests is memory-bound: want compute folded under the transfer, got FLOPs %v mem %v (analytical mem %v)",
			tr.ComputeFLOPs, tr.ComputeMem, ta.ComputeMem)
	}
	if tr.Compute() >= ta.Compute() {
		t.Errorf("roofline overlapped compute %v should beat analytical sum %v",
			tr.Compute(), ta.Compute())
	}
}

func TestEngineEvaluateStreamMatchesBatch(t *testing.T) {
	p := pai.DefaultTraceParams()
	p.NumJobs = 1200
	trace, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	eng, err := pai.New(pai.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := eng.EvaluateBatch(ctx, trace.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	var got []pai.Times
	n, err := eng.EvaluateStream(ctx, &buf, func(r pai.StreamResult) error {
		if r.Index != len(got) {
			t.Fatalf("result %d arrived at position %d", r.Index, len(got))
		}
		got = append(got, r.Times)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) || len(got) != len(want) {
		t.Fatalf("streamed %d of %d jobs", n, len(want))
	}
	for i := range want {
		if got[i].Total() != want[i].Total() {
			t.Fatalf("job %d: stream %v vs batch %v", i, got[i].Total(), want[i].Total())
		}
	}
}

func TestEngineEvaluateStreamDecodeError(t *testing.T) {
	eng, err := pai.New()
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(`{"name":"x","class":"1w1g","c_nodes":1,"batch_size":8,"flops":1e9}` + "\n" + "garbage\n")
	n, err := eng.EvaluateStream(context.Background(), in, nil)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-numbered decode error, got %v (n=%d)", err, n)
	}
}

func TestEngineStreamBreakdownsFromSource(t *testing.T) {
	p := pai.DefaultTraceParams()
	p.NumJobs = 1500
	src, err := pai.NewTraceSource(p)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := pai.New(pai.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := eng.StreamBreakdowns(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if acc.N() != p.NumJobs {
		t.Fatalf("folded %d of %d jobs", acc.N(), p.NumJobs)
	}
	trace, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	overallStream, err := acc.Overall(pai.CNodeLevel)
	if err != nil {
		t.Fatal(err)
	}
	overallBatch, err := eng.OverallBreakdown(context.Background(), trace.Jobs, pai.CNodeLevel)
	if err != nil {
		t.Fatal(err)
	}
	for comp, want := range overallBatch {
		if got := overallStream[comp]; got != want {
			t.Errorf("%v: stream %v vs batch %v", comp, got, want)
		}
	}
}

// TestEngineWithCache: a cached engine must return identical breakdowns to
// an uncached one and report hits once a record recurs.
func TestEngineWithCache(t *testing.T) {
	plain, err := pai.New(pai.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := pai.New(pai.WithParallelism(2), pai.WithCache(1024))
	if err != nil {
		t.Fatal(err)
	}
	job := engineTestJob()
	want, err := plain.Evaluate(job)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := cached.Evaluate(job)
		if err != nil {
			t.Fatal(err)
		}
		if got.Total() != want.Total() || got.Weights != want.Weights {
			t.Fatalf("cached breakdown differs on call %d: %v vs %v", i, got.Total(), want.Total())
		}
	}
	st := cached.CacheStats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("cache stats = %+v, want 1 miss / 2 hits", st)
	}
	if st.HitRate() <= 0.6 || st.HitRate() >= 0.7 {
		t.Errorf("hit rate = %v, want 2/3", st.HitRate())
	}
	// Batch evaluation over a repetitive trace flows through the same cache.
	jobs := make([]pai.Features, 100)
	for i := range jobs {
		jobs[i] = job
	}
	times, err := cached.EvaluateBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range times {
		if tm.Total() != want.Total() {
			t.Fatalf("batch result %d differs under cache", i)
		}
	}
	if got := cached.CacheStats(); got.Hits < 100 {
		t.Errorf("batch over repetitive trace produced only %d hits", got.Hits)
	}
	// Derivation carries the cache configuration.
	derived, err := cached.With(pai.WithOverlap(pai.OverlapIdeal))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := derived.Evaluate(job); err != nil {
		t.Fatal(err)
	}
	if got := derived.CacheStats(); got.Misses != 1 {
		t.Errorf("derived engine should have a fresh cache with 1 miss, got %+v", got)
	}
	// An uncached engine reports zero stats.
	if got := plain.CacheStats(); got != (pai.CacheStats{}) {
		t.Errorf("uncached engine stats = %+v, want zero", got)
	}
}

// TestEngineEvaluateSources: the sharded multi-source fold must agree with
// the single-source streaming fold over the same jobs.
func TestEngineEvaluateSources(t *testing.T) {
	p := pai.DefaultTraceParams()
	p.NumJobs = 4000
	trace, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := pai.New(pai.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bulk, err := eng.StreamBreakdowns(ctx, pai.NewSliceJobSource(trace.Jobs))
	if err != nil {
		t.Fatal(err)
	}
	mid := len(trace.Jobs) / 2
	merged, counts, err := eng.EvaluateSources(ctx,
		pai.NewSliceJobSource(trace.Jobs[:mid]),
		pai.NewSliceJobSource(trace.Jobs[mid:]))
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 || counts[0] != mid || counts[1] != len(trace.Jobs)-mid {
		t.Fatalf("per-shard counts = %v", counts)
	}
	if merged.N() != bulk.N() {
		t.Fatalf("merged %d jobs, want %d", merged.N(), bulk.N())
	}
	gotO, err := merged.Overall(pai.CNodeLevel)
	if err != nil {
		t.Fatal(err)
	}
	wantO, err := bulk.Overall(pai.CNodeLevel)
	if err != nil {
		t.Fatal(err)
	}
	for comp, want := range wantO {
		if d := gotO[comp] - want; d > 1e-12 || d < -1e-12 {
			t.Errorf("%v: sharded %v vs bulk %v", comp, gotO[comp], want)
		}
	}
	// Sharded evaluation through a cached engine stays correct.
	cached, err := eng.With(pai.WithCache(4096))
	if err != nil {
		t.Fatal(err)
	}
	mergedC, _, err := cached.EvaluateSources(ctx,
		pai.NewSliceJobSource(trace.Jobs[:mid]),
		pai.NewSliceJobSource(trace.Jobs[mid:]))
	if err != nil {
		t.Fatal(err)
	}
	gotC, err := mergedC.Overall(pai.CNodeLevel)
	if err != nil {
		t.Fatal(err)
	}
	for comp, want := range gotO {
		if d := gotC[comp] - want; d > 1e-12 || d < -1e-12 {
			t.Errorf("%v: cached sharded %v vs %v", comp, gotC[comp], want)
		}
	}
}
