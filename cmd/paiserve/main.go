// Command paiserve runs the evaluation-as-a-service daemon: a persistent
// HTTP server that accepts streamed NDJSON trace uploads per tenant, folds
// every evaluated job into a sliding ring of time-window sinks, and serves
// live reports, framed sink snapshots (consumable by paibench -merge) and
// service metrics.
//
// Usage:
//
//	paiserve [-addr :8077] [-window 15m] [-windows 8]
//	         [-backend name] [-par N] [-cache N] [-cache-bytes N]
//	         [-max-upload-bytes N] [-tenant-uploads N] [-max-tenants N]
//	         [-state-dir DIR] [-drain-timeout 30s]
//
// Endpoints:
//
//	POST /v1/tenants/{id}/traces    streamed NDJSON upload
//	GET  /v1/tenants/{id}/report    live report (?window=15m, ?format=json)
//	GET  /v1/tenants/{id}/snapshot  framed sink snapshot download
//	GET  /healthz  GET /version  GET /metrics
//
// On SIGTERM (or interrupt) the daemon drains gracefully: in-flight uploads
// finish (bounded by -drain-timeout), each tenant's sealed state is flushed
// to -state-dir as a framed snapshot, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	pai "repro"
	"repro/internal/serve"
	"repro/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "paiserve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("paiserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8077", "listen address (host:port; :0 picks a free port)")
	windowWidth := fs.Duration("window", 15*time.Minute, "time-window width")
	windowCount := fs.Int("windows", 8, "ring capacity in windows")
	backendName := fs.String("backend", "analytical", "evaluation backend")
	par := fs.Int("par", 0, "evaluation worker-pool size (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache", 16384, "content-keyed result-cache entry budget (0 = off)")
	cacheBytes := fs.Int64("cache-bytes", 0,
		"result-cache byte budget; entry budget adapts to the measured entry footprint (overrides -cache; 0 = off)")
	maxUpload := fs.Int64("max-upload-bytes", 1<<30, "maximum bytes of one upload body")
	tenantUploads := fs.Int("tenant-uploads", 2, "concurrent uploads allowed per tenant (excess get 429)")
	maxTenants := fs.Int("max-tenants", 256, "maximum number of tenants")
	stateDir := fs.String("state-dir", "",
		"flush per-tenant snapshots to this directory on graceful shutdown (empty = no flush)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second,
		"how long to wait for in-flight uploads on shutdown before closing connections")
	showVersion := fs.Bool("version", false, "print build/version information and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.Get())
		return nil
	}

	engOpts := []pai.Option{
		pai.WithConfig(pai.BaselineConfig()),
		pai.WithBackend(*backendName),
	}
	if *par > 0 {
		engOpts = append(engOpts, pai.WithParallelism(*par))
	}
	switch {
	case *cacheBytes > 0:
		engOpts = append(engOpts, pai.WithCacheBytes(*cacheBytes))
	case *cacheEntries > 0:
		engOpts = append(engOpts, pai.WithCache(*cacheEntries))
	}
	eng, err := pai.New(engOpts...)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Config{
		Engine:         eng,
		WindowWidth:    *windowWidth,
		WindowCount:    *windowCount,
		Target:         pai.ToAllReduceLocal,
		MaxTenants:     *maxTenants,
		MaxUploadBytes: *maxUpload,
		TenantUploads:  *tenantUploads,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger := log.New(stderr, "paiserve: ", log.LstdFlags)
	logger.Printf("%s", version.Get())
	logger.Printf("listening on %s (backend %s, %d workers, %d windows of %s)",
		ln.Addr(), eng.Backend(), eng.Parallelism(), *windowCount, *windowWidth)

	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Printf("draining (up to %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("drain: %v (closing connections)", err)
		httpSrv.Close()
	}
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	if *stateDir != "" {
		if err := srv.FlushState(*stateDir); err != nil {
			return fmt.Errorf("flush state: %w", err)
		}
		logger.Printf("flushed tenant state to %s", *stateDir)
	}
	logger.Printf("shutdown complete")
	return nil
}
