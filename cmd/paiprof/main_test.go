package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/profile"
)

func TestRunAllModels(t *testing.T) {
	for _, model := range []string{"ResNet50", "NMT", "BERT", "Speech", "Multi-Interests", "GCN"} {
		var buf bytes.Buffer
		if err := run([]string{"-model", model, "-top", "3"}, &buf); err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		out := buf.String()
		for _, want := range []string{"profiled " + model, "top 3 kernels",
			"extracted features", "bottleneck", "roofline"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q", model, want)
			}
		}
	}
}

func TestRunWritesProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	var buf bytes.Buffer
	if err := run([]string{"-model", "GCN", "-profile", path}, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := profile.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model != "GCN" || len(p.Records) == 0 {
		t.Errorf("bad serialized profile: %s/%d", p.Model, len(p.Records))
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-model", "nope"}, &buf); err == nil {
		t.Error("expected error for unknown model")
	}
	if err := run([]string{"-flag-that-does-not-exist"}, &buf); err == nil {
		t.Error("expected error for unknown flag")
	}
	if err := run([]string{"-model", "GCN", "-profile", "/no/such/dir/p.json"}, &buf); err == nil {
		t.Error("expected error for unwritable profile path")
	}
}
