// Command paiprof runs the Fig. 4 characterization pipeline for one
// case-study model: build its operation graph, collect a RunMetadata-style
// runtime profile, extract the workload feature schema, and evaluate the
// analytical breakdown.
//
// Usage:
//
//	paiprof [-model ResNet50] [-profile out.json] [-top 10]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	pai "repro"
	"repro/internal/hw"
	"repro/internal/opgraph"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/roofline"
	"repro/internal/version"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paiprof:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("paiprof", flag.ContinueOnError)
	fs.SetOutput(stdout)
	model := fs.String("model", "ResNet50", "case-study model ("+strings.Join(opgraph.Models(), ", ")+")")
	out := fs.String("profile", "", "write the raw kernel profile as JSON to this file")
	top := fs.Int("top", 10, "number of hottest kernels to list")
	backendName := fs.String("backend", "analytical",
		"evaluation backend ("+strings.Join(pai.Backends(), ", ")+")")
	showVersion := fs.Bool("version", false, "print build/version information and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.Get())
		return nil
	}

	g, err := opgraph.Build(*model)
	if err != nil {
		return err
	}
	cfg := hw.Testbed()
	eff := workload.DefaultEfficiency()
	prof, err := profile.Collect(g, cfg, eff)
	if err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := prof.WriteJSON(f); err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "profiled %s: %d kernels, step time %.4fs\n", *model, len(prof.Records), prof.StepTime)

	// Hottest kernels.
	recs := append([]profile.KernelRecord(nil), prof.Records...)
	sort.Slice(recs, func(a, b int) bool { return recs[a].Duration > recs[b].Duration })
	t := &report.Table{Title: fmt.Sprintf("top %d kernels", *top),
		Headers: []string{"op", "kind", "device", "duration", "share"}}
	n := *top
	if n > len(recs) {
		n = len(recs)
	}
	for _, r := range recs[:n] {
		t.AddRow(r.Op, r.Kind.String(), r.Device,
			fmt.Sprintf("%.4fs", r.Duration), report.Pct(r.Duration/prof.StepTime))
	}
	if err := t.Render(stdout); err != nil {
		return err
	}

	// Feature extraction + analytical breakdown.
	meta, err := profile.MetaFor(*model)
	if err != nil {
		return err
	}
	feats, err := profile.Extract(prof, meta)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "extracted features: FLOPs %.4gG, mem %s, input %s, class %s, cNodes %d\n",
		feats.FLOPs/1e9, report.Bytes(feats.MemAccessBytes), report.Bytes(feats.InputBytes),
		feats.Class, feats.CNodes)

	eng, err := pai.New(pai.WithConfig(cfg), pai.WithBackend(*backendName))
	if err != nil {
		return err
	}
	bd, err := eng.Evaluate(feats)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s breakdown: data %.4fs, compute %.4fs, weights %.4fs, total %.4fs\n",
		eng.Backend(), bd.DataIO, bd.Compute(), bd.Weights, bd.Total())
	hwc, frac, err := eng.Bottleneck(feats)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "bottleneck: %s (%s of step time)\n", hwc, report.Pct(frac))

	// Roofline placement: is the computation itself compute- or memory-bound?
	bound, err := roofline.Classify(feats, cfg.GPU)
	if err != nil {
		return err
	}
	intensity, err := roofline.Intensity(feats)
	if err != nil {
		return err
	}
	balance, err := roofline.Balance(cfg.GPU)
	if err != nil {
		return err
	}
	ceil, err := roofline.ComputeEfficiencyCeiling(feats, cfg.GPU)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "roofline: %s (intensity %.2f FLOP/B vs balance %.2f); compute-efficiency ceiling %s\n",
		bound, intensity, balance, report.Pct(ceil))
	return nil
}
