package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	pai "repro"
)

func TestRunToStdout(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-jobs", "50", "-seed", "3"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"jobs\"") {
		t.Error("stdout should carry the JSON trace")
	}
	if !strings.Contains(errw.String(), "generated 50 jobs") {
		t.Errorf("stderr summary wrong: %q", errw.String())
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errw bytes.Buffer
	if err := run([]string{"-jobs", "20", "-o", path}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("stdout should be empty when -o is given")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-jobs", "0"}, &out, &errw); err == nil {
		t.Error("expected error for zero jobs")
	}
	if err := run([]string{"-bogus"}, &out, &errw); err == nil {
		t.Error("expected error for unknown flag")
	}
	if err := run([]string{"-jobs", "5", "-o", "/nonexistent-dir/x.json"}, &out, &errw); err == nil {
		t.Error("expected error for unwritable output")
	}
	if err := run([]string{"-jobs", "5", "-format", "ndjson", "-no-index"}, &out, &errw); err == nil {
		t.Error("expected error for -no-index on a non-colbin codec")
	}
}

// TestRateValidation: an explicit non-positive -rate is a flag error — it
// would otherwise silently produce an unstamped trace that replay later
// refuses with ErrNoArrivals — and -rate cannot combine with -convert
// (stamps pass through conversion unchanged).
func TestRateValidation(t *testing.T) {
	var out, errw bytes.Buffer
	for _, rate := range []string{"0", "-3"} {
		if err := run([]string{"-jobs", "5", "-rate", rate}, &out, &errw); err == nil {
			t.Errorf("expected error for -rate %s", rate)
		} else if !strings.Contains(err.Error(), "must be positive") {
			t.Errorf("-rate %s: error %q should name the positivity requirement", rate, err)
		}
	}
	in := filepath.Join(t.TempDir(), "in.json")
	if err := run([]string{"-jobs", "5", "-o", in}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-convert", in, "-rate", "100"}, &out, &errw); err == nil {
		t.Error("expected error for -rate with -convert")
	}
	// A positive rate stamps arrivals: every job after the first carries a
	// strictly positive arrival_sec.
	var stamped, errw2 bytes.Buffer
	if err := run([]string{"-jobs", "50", "-rate", "3600"}, &stamped, &errw2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stamped.String(), "\"arrival_sec\"") {
		t.Error("-rate trace should carry arrival_sec stamps")
	}
}

// TestNoIndexOmitsFooter: -no-index must produce a colbin file without the
// seekable footer (indexed opens fail with ErrNoColumnIndex), while the
// default keeps it; both files stay sequentially decodable.
func TestNoIndexOmitsFooter(t *testing.T) {
	dir := t.TempDir()
	indexed := filepath.Join(dir, "indexed.colbin")
	plain := filepath.Join(dir, "plain.colbin")
	var out, errw bytes.Buffer
	if err := run([]string{"-jobs", "200", "-seed", "2", "-format", "colbin", "-o", indexed}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-jobs", "200", "-seed", "2", "-format", "colbin", "-no-index", "-o", plain}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for path, wantIndex := range map[string]bool{indexed: true, plain: false} {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		st, err := f.Stat()
		if err != nil {
			t.Fatal(err)
		}
		_, err = pai.NewIndexedColumnReader(f, st.Size())
		if wantIndex && err != nil {
			t.Errorf("%s: indexed open failed: %v", path, err)
		}
		if !wantIndex && !errors.Is(err, pai.ErrNoColumnIndex) {
			t.Errorf("%s: indexed open of a -no-index file returned %v, want ErrNoColumnIndex", path, err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		src, err := pai.OpenTraceSource(f, "colbin")
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			if _, err := src.Next(); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				t.Fatalf("%s: sequential decode: %v", path, err)
			}
			n++
		}
		if n != 200 {
			t.Errorf("%s: sequential decode yielded %d records, want 200", path, n)
		}
		f.Close()
	}
}
