package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunToStdout(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-jobs", "50", "-seed", "3"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"jobs\"") {
		t.Error("stdout should carry the JSON trace")
	}
	if !strings.Contains(errw.String(), "generated 50 jobs") {
		t.Errorf("stderr summary wrong: %q", errw.String())
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errw bytes.Buffer
	if err := run([]string{"-jobs", "20", "-o", path}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("stdout should be empty when -o is given")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-jobs", "0"}, &out, &errw); err == nil {
		t.Error("expected error for zero jobs")
	}
	if err := run([]string{"-bogus"}, &out, &errw); err == nil {
		t.Error("expected error for unknown flag")
	}
	if err := run([]string{"-jobs", "5", "-o", "/nonexistent-dir/x.json"}, &out, &errw); err == nil {
		t.Error("expected error for unwritable output")
	}
}
