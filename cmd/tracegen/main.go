// Command tracegen generates a synthetic PAI-style cluster trace calibrated
// to the paper's published distributions and writes it as JSON.
//
// Usage:
//
//	tracegen [-jobs N] [-seed S] [-rate R] [-o trace.json] [-ndjson] [-summary]
//
// With -summary the generated trace is batch-evaluated through a default
// Engine and the modeled mean step time is reported on stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	pai "repro"
	"repro/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobs := fs.Int("jobs", 20000, "number of jobs to generate")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("o", "", "output file (default stdout)")
	ndjson := fs.Bool("ndjson", false, "write NDJSON (one job per line) instead of a whole-trace document; generation streams, so -jobs can be millions")
	summary := fs.Bool("summary", false, "batch-evaluate the trace and report mean step time (ignored with -ndjson)")
	rate := fs.Float64("rate", 0,
		"stamp each job's arrival_sec with a Poisson arrival process of this rate in jobs/hour (0 = no stamping)")
	fixedInterval := fs.Bool("fixed-interval", false,
		"with -rate: stamp exactly periodic arrivals (every 3600/rate seconds) instead of Poisson gaps")
	showVersion := fs.Bool("version", false, "print build/version information and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.Get())
		return nil
	}

	p := pai.DefaultTraceParams()
	p.NumJobs = *jobs
	p.Seed = *seed
	p.ArrivalRate = *rate
	p.ArrivalFixed = *fixedInterval

	// Validate parameters (and, for the in-memory path, generate) before
	// creating -o, so a bad flag never truncates an existing trace file.
	var src *pai.TraceSource
	var tr *pai.Trace
	var err error
	if *ndjson {
		src, err = pai.NewTraceSource(p)
	} else {
		tr, err = pai.GenerateTrace(p)
	}
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *ndjson {
		// Streaming path: jobs go straight from the generator to the
		// encoder, so memory is independent of -jobs.
		enc := pai.NewTraceEncoder(w)
		var cNodes int
		for {
			f, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := enc.Encode(f); err != nil {
				return err
			}
			cNodes += f.CNodes
		}
		if err := enc.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "generated %d jobs (%d cNodes) with seed %d\n", enc.N(), cNodes, *seed)
		return nil
	}

	if err := tr.WriteJSON(w); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "generated %d jobs (%d cNodes) with seed %d\n",
		len(tr.Jobs), tr.TotalCNodes(), *seed)
	if *summary {
		eng, err := pai.New(pai.WithConfig(p.Config))
		if err != nil {
			return err
		}
		times, err := eng.EvaluateBatch(context.Background(), tr.Jobs)
		if err != nil {
			return err
		}
		var sum float64
		for _, t := range times {
			sum += t.Total()
		}
		fmt.Fprintf(stderr, "modeled mean step time %.4fs over %d jobs (%s backend, %d workers)\n",
			sum/float64(len(times)), len(times), eng.Backend(), eng.Parallelism())
	}
	return nil
}
