// Command tracegen generates a synthetic PAI-style cluster trace calibrated
// to the paper's published distributions, or converts an existing trace
// between the registered codecs (json, ndjson, colbin).
//
// Usage:
//
//	tracegen [-jobs N] [-distinct N] [-seed S] [-rate R] [-o trace.json] [-format F] [-summary]
//	tracegen -convert IN [-format F] [-o OUT]
//
// With -convert the input's format is sniffed and records stream straight
// into the output codec, so multi-million-job traces convert in constant
// memory. With -summary the generated trace is batch-evaluated through a
// default Engine and the modeled mean step time is reported on stderr.
// Colbin output carries the seekable block-index footer by default (the
// input of paibench -par-file and -coordinate -trace); -no-index omits it.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	pai "repro"
	"repro/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobs := fs.Int("jobs", 20000, "number of jobs to generate")
	distinct := fs.Int("distinct", 0,
		"with positive N, make the trace production-repetitive: the first N jobs are fresh, the rest resubmit them (0 = every job distinct)")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("o", "", "output file (default stdout)")
	format := fs.String("format", "", fmt.Sprintf("output trace format, one of %v (default json)", pai.TraceFormats()))
	ndjson := fs.Bool("ndjson", false, "shorthand for -format ndjson")
	convert := fs.String("convert", "", "convert an existing trace file (input format sniffed) to -format instead of generating")
	blockSize := fs.Int("block-size", 0,
		"records per block for block-structured output formats (colbin); 0 = codec default")
	noIndex := fs.Bool("no-index", false,
		"omit the colbin block-index footer; the file loses seekable parallel decode and always falls back to the sequential scan (colbin output only)")
	summary := fs.Bool("summary", false, "batch-evaluate the trace and report mean step time (json format only)")
	rate := fs.Float64("rate", 0,
		"stamp each job's arrival_sec with a Poisson arrival process of this rate in jobs/hour (must be positive when given; omit for no stamping)")
	fixedInterval := fs.Bool("fixed-interval", false,
		"with -rate: stamp exactly periodic arrivals (every 3600/rate seconds) instead of Poisson gaps")
	showVersion := fs.Bool("version", false, "print build/version information and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.Get())
		return nil
	}

	// An explicit -rate must stamp arrivals: a non-positive value would
	// silently produce an unstamped trace that replay later refuses
	// (ErrNoArrivals), so refuse it here with the fix in hand.
	rateSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "rate" {
			rateSet = true
		}
	})
	if rateSet && *rate <= 0 {
		return fmt.Errorf("-rate %v: arrival rate must be positive (jobs/hour); "+
			"omit -rate entirely for an unstamped trace", *rate)
	}
	if rateSet && *convert != "" {
		return fmt.Errorf("-rate applies to generation, not -convert (arrival stamps pass through conversion unchanged)")
	}

	name := *format
	switch {
	case name == "auto":
		return fmt.Errorf("-format auto only applies to reading; pick one of %v", pai.TraceFormats())
	case *ndjson && name != "" && name != "ndjson":
		return fmt.Errorf("-ndjson conflicts with -format %s", name)
	case *ndjson:
		name = "ndjson"
	case name == "":
		name = "json"
	}

	if *convert != "" {
		return convertTrace(*convert, *out, name, *blockSize, *noIndex, stdout, stderr)
	}

	p := pai.DefaultTraceParams()
	p.NumJobs = *jobs
	p.DistinctJobs = *distinct
	p.Seed = *seed
	p.ArrivalRate = *rate
	p.ArrivalFixed = *fixedInterval

	// Validate parameters (and, for the in-memory path, generate) before
	// creating -o, so a bad flag never truncates an existing trace file.
	streamed := name != "json"
	var src *pai.TraceSource
	var tr *pai.Trace
	var err error
	if streamed {
		src, err = pai.NewTraceSource(p)
	} else {
		tr, err = pai.GenerateTrace(p)
	}
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if streamed {
		// Streaming path: jobs go straight from the generator to the
		// encoder, so memory is independent of -jobs.
		tw, err := pai.NewTraceWriterBlockRecords(w, name, *blockSize)
		if err != nil {
			return err
		}
		if err := applyNoIndex(tw, *noIndex, name); err != nil {
			return err
		}
		var n, cNodes int
		for {
			f, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := tw.Write(f); err != nil {
				return err
			}
			n++
			cNodes += f.CNodes
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "generated %d jobs (%d cNodes) with seed %d as %s\n", n, cNodes, *seed, name)
		return nil
	}

	if err := tr.WriteJSON(w); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "generated %d jobs (%d cNodes) with seed %d\n",
		len(tr.Jobs), tr.TotalCNodes(), *seed)
	if *summary {
		eng, err := pai.New(pai.WithConfig(p.Config))
		if err != nil {
			return err
		}
		times, err := eng.EvaluateBatch(context.Background(), tr.Jobs)
		if err != nil {
			return err
		}
		var sum float64
		for _, t := range times {
			sum += t.Total()
		}
		fmt.Fprintf(stderr, "modeled mean step time %.4fs over %d jobs (%s backend, %d workers)\n",
			sum/float64(len(times)), len(times), eng.Backend(), eng.Parallelism())
	}
	return nil
}

// applyNoIndex disables the block-index footer on writers that carry one
// (colbin); asking for it on any other codec is a flag error, not a no-op,
// so scripts notice the option did nothing.
func applyNoIndex(tw pai.TraceWriter, noIndex bool, name string) error {
	if !noIndex {
		return nil
	}
	oi, ok := tw.(interface{ OmitIndex() })
	if !ok {
		return fmt.Errorf("-no-index applies to colbin output, not %s", name)
	}
	oi.OmitIndex()
	return nil
}

// convertTrace streams records from the trace at inPath (format sniffed)
// into outPath (stdout if empty) in the named output codec.
func convertTrace(inPath, outPath, name string, blockSize int, noIndex bool, stdout, stderr io.Writer) error {
	in, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer in.Close()
	src, err := pai.OpenTraceSource(in, pai.TraceFormatAuto)
	if err != nil {
		return err
	}

	w := stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	tw, err := pai.NewTraceWriterBlockRecords(w, name, blockSize)
	if err != nil {
		return err
	}
	if err := applyNoIndex(tw, noIndex, name); err != nil {
		return err
	}
	n := 0
	for {
		f, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := tw.Write(f); err != nil {
			return err
		}
		n++
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "converted %d jobs from %s to %s\n", n, inPath, name)
	return nil
}
