package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeResult(t *testing.T, name string, mutate func(*result)) string {
	t.Helper()
	r := &result{Schema: "paibench/1", Jobs: 1000, Seed: 1, Backend: "analytical", JobsPerSec: 100000}
	r.Fidelity.ClassJobShare = map[string]float64{"1w1g": 0.59, "1wng": 0.12, "PS/Worker": 0.29}
	r.Fidelity.ClassCNodeShare = map[string]float64{"1w1g": 0.08, "1wng": 0.07, "PS/Worker": 0.85}
	r.Fidelity.OverallCNode = map[string]float64{"data_io": 0.04, "weights": 0.62, "compute": 0.34}
	r.Fidelity.MeanStepSec = 0.75
	r.Fidelity.P50StepSec = 0.50
	r.Fidelity.P99StepSec = 4.1
	if mutate != nil {
		mutate(r)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNoRegression(t *testing.T) {
	base := writeResult(t, "base.json", nil)
	cur := writeResult(t, "cur.json", func(r *result) { r.JobsPerSec = 95000 })
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("output: %s", out.String())
	}
}

func TestThroughputRegressionFails(t *testing.T) {
	base := writeResult(t, "base.json", nil)
	cur := writeResult(t, "cur.json", func(r *result) { r.JobsPerSec = 70000 }) // -30%
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatalf("expected >20%% throughput regression to fail\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL throughput") {
		t.Errorf("output: %s", out.String())
	}
}

func TestFasterAlwaysPasses(t *testing.T) {
	base := writeResult(t, "base.json", nil)
	cur := writeResult(t, "cur.json", func(r *result) { r.JobsPerSec = 1e9 })
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("faster run must pass: %v", err)
	}
}

func TestFidelityDriftFails(t *testing.T) {
	base := writeResult(t, "base.json", nil)
	cur := writeResult(t, "cur.json", func(r *result) {
		r.Fidelity.OverallCNode["weights"] = 0.55 // drifted by 0.07 > 0.02 tol
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatalf("expected fidelity drift to fail\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL overall_cnode_level[weights]") {
		t.Errorf("output: %s", out.String())
	}
}

func TestStepTimeDriftFails(t *testing.T) {
	base := writeResult(t, "base.json", nil)
	cur := writeResult(t, "cur.json", func(r *result) { r.Fidelity.P99StepSec = 5.0 })
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("expected p99 drift to fail")
	}
}

func TestBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-current", "x.json"}, &out); err == nil {
		t.Error("expected missing baseline to fail")
	}
	if err := run([]string{}, &out); err == nil {
		t.Error("expected missing -current to fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base := writeResult(t, "base.json", nil)
	if err := run([]string{"-baseline", base, "-current", bad}, &out); err == nil {
		t.Error("expected schema mismatch to fail")
	}
}

// TestCheckedInBaselineLoads guards the repository's golden file against
// schema drift.
func TestCheckedInBaselineLoads(t *testing.T) {
	r, err := load(filepath.Join("..", "..", "BENCH_BASELINE.json"))
	if err != nil {
		t.Fatal(err)
	}
	if r.JobsPerSec <= 0 || len(r.Fidelity.OverallCNode) != 3 {
		t.Errorf("baseline incomplete: %+v", r)
	}
}

func TestCodecRegressionFails(t *testing.T) {
	base := writeResult(t, "base.json", func(r *result) { r.CodecRecordsPerSec = 130000 })
	cur := writeResult(t, "cur.json", func(r *result) { r.CodecRecordsPerSec = 50000 })
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("codec regression should fail the gate")
	}
	if !strings.Contains(out.String(), "FAIL codec") {
		t.Errorf("output does not name the codec gate:\n%s", out.String())
	}
}

func TestCodecGateSkippedWhenAbsent(t *testing.T) {
	// Baselines predating the codec benchmark carry no codec field; the
	// gate must not engage.
	base := writeResult(t, "base.json", nil)
	cur := writeResult(t, "cur.json", func(r *result) { r.CodecRecordsPerSec = 50000 })
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("gate engaged without a baseline codec figure: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "codec") {
		t.Errorf("codec line emitted without baseline figure:\n%s", out.String())
	}
}

func TestCodecFasterAlwaysPasses(t *testing.T) {
	base := writeResult(t, "base.json", func(r *result) { r.CodecRecordsPerSec = 130000 })
	cur := writeResult(t, "cur.json", func(r *result) { r.CodecRecordsPerSec = 900000 })
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("faster codec failed the gate: %v", err)
	}
}

func TestColbinRegressionFails(t *testing.T) {
	base := writeResult(t, "base.json", func(r *result) { r.ColbinRecordsPerSec = 10000000 })
	cur := writeResult(t, "cur.json", func(r *result) { r.ColbinRecordsPerSec = 5000000 })
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("colbin regression should fail the gate")
	}
	if !strings.Contains(out.String(), "FAIL colbin") {
		t.Errorf("output does not name the colbin gate:\n%s", out.String())
	}
}

func TestColbinGateSkippedWhenAbsent(t *testing.T) {
	// Baselines predating the columnar codec carry no colbin field; the
	// gate must not engage.
	base := writeResult(t, "base.json", nil)
	cur := writeResult(t, "cur.json", func(r *result) { r.ColbinRecordsPerSec = 5000000 })
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("gate engaged without a baseline colbin figure: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "colbin") {
		t.Errorf("colbin line emitted without baseline figure:\n%s", out.String())
	}
}

func TestFidelityOnlySkipsTimingGates(t *testing.T) {
	base := writeResult(t, "base.json", nil)
	// A merged shard result: no timing fields at all.
	cur := writeResult(t, "cur.json", func(r *result) { r.JobsPerSec = 0; r.CodecRecordsPerSec = 0 })
	var out bytes.Buffer
	if err := run([]string{"-fidelity-only", "-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("fidelity-only run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "skip throughput and codec gates") {
		t.Errorf("output: %s", out.String())
	}
	// Without the flag the same result fails the throughput floor.
	var out2 bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out2); err == nil {
		t.Error("zero throughput passed without -fidelity-only")
	}
}

func TestSketchSectionMismatchFails(t *testing.T) {
	section := func(r *result) {
		r.CDF = map[string]any{"weights_fraction": map[string]any{"PS/Worker": map[string]any{"p50": 0.64}}}
		r.Projection = map[string]any{"n": float64(500), "mean_node_speedup": 3.4}
	}
	base := writeResult(t, "base.json", section)
	same := writeResult(t, "cur.json", section)
	var out bytes.Buffer
	if err := run([]string{"-fidelity-only", "-baseline", base, "-current", same}, &out); err != nil {
		t.Fatalf("identical sections failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "cdf section identical") {
		t.Errorf("cdf comparison not reported:\n%s", out.String())
	}

	drifted := writeResult(t, "cur2.json", func(r *result) {
		section(r)
		r.Projection["mean_node_speedup"] = 3.5
	})
	var out2 bytes.Buffer
	if err := run([]string{"-fidelity-only", "-baseline", base, "-current", drifted}, &out2); err == nil {
		t.Error("drifted projection section passed")
	}
}

func TestSketchSectionsSkippedWhenAbsent(t *testing.T) {
	// Older baselines without the sections must still compare cleanly
	// against new results that have them.
	base := writeResult(t, "base.json", nil)
	cur := writeResult(t, "cur.json", func(r *result) {
		r.CDF = map[string]any{"weights_fraction": map[string]any{}}
	})
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("asymmetric sections failed: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "cdf section") {
		t.Errorf("cdf gate engaged with absent baseline section:\n%s", out.String())
	}
}

// writeRawResult writes a result JSON with fields beyond the comparison
// struct, for exercising the generic -assert path.
func writeRawResult(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "raw.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const smokeResult = `{
 "schema": "paibench/1",
 "jobs": 100000,
 "cache_hit_rate": 0.993,
 "codec": false,
 "shard_jobs_per_sec": [100, 200, 300, 400],
 "projection": {"n": 29000, "mean_node_speedup": 1.4}
}`

// TestSmokeAsserts: -smoke evaluates expressions with no baseline at all.
func TestSmokeAsserts(t *testing.T) {
	cur := writeRawResult(t, smokeResult)
	var out bytes.Buffer
	err := run([]string{"-smoke", "-current", cur,
		"-assert", "cache_hit_rate>0.5",
		"-assert", "shard_jobs_per_sec.len==4",
		"-assert", "shard_jobs_per_sec.2==300",
		"-assert", "projection.n>0",
		"-assert", "jobs==100000",
		"-assert", "codec==0",
		"-assert", "projection.mean_node_speedup>=1.4",
		"-assert", "cache_hit_rate!=1",
	}, &out)
	if err != nil {
		t.Fatalf("asserts failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "8 assertion(s) hold") {
		t.Errorf("output: %s", out.String())
	}
}

// TestSmokeAssertFailure: a false expression fails the run and names the
// observed value.
func TestSmokeAssertFailure(t *testing.T) {
	cur := writeRawResult(t, smokeResult)
	var out bytes.Buffer
	err := run([]string{"-smoke", "-current", cur, "-assert", "cache_hit_rate>0.999"}, &out)
	if err == nil || !strings.Contains(err.Error(), "assertion") {
		t.Errorf("false assertion passed: %v", err)
	}
	if !strings.Contains(out.String(), "observed 0.993") {
		t.Errorf("failure does not show the observed value: %s", out.String())
	}
}

// TestSmokeAssertErrors: malformed expressions and unknown paths error out
// rather than silently passing.
func TestSmokeAssertErrors(t *testing.T) {
	cur := writeRawResult(t, smokeResult)
	for _, expr := range []string{
		"no-operator",
		"cache_hit_rate>not-a-number",
		"no_such_field>0",
		"projection.missing>0",
		"shard_jobs_per_sec.9==0",
		"shard_jobs_per_sec>0",
		"jobs.deeper==1",
		">0.5",
	} {
		var out bytes.Buffer
		if err := run([]string{"-smoke", "-current", cur, "-assert", expr}, &out); err == nil {
			t.Errorf("expression %q accepted", expr)
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-smoke", "-current", cur}, &out); err == nil {
		t.Error("-smoke without -assert accepted")
	}
	bad := writeRawResult(t, `{"schema": "other/1"}`)
	if err := run([]string{"-smoke", "-current", bad, "-assert", "jobs==1"}, &out); err == nil {
		t.Error("foreign schema accepted")
	}
}

// TestAssertsAlongsideBaseline: without -smoke, -assert expressions run in
// addition to the baseline gates.
func TestAssertsAlongsideBaseline(t *testing.T) {
	base := writeResult(t, "base.json", nil)
	cur := writeResult(t, "cur.json", nil)
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-assert", "jobs==1000"}, &out); err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, out.String())
	}
	if err := run([]string{"-baseline", base, "-current", cur, "-assert", "jobs==999"}, &out); err == nil {
		t.Error("false assertion alongside baseline passed")
	}
}
