// Command benchdiff gates CI on the streaming pipeline's benchmark results:
// it compares a fresh paibench result JSON against the checked-in golden
// baseline (BENCH_BASELINE.json) and exits non-zero when throughput
// regresses beyond the allowed fraction or the trace's aggregate statistics
// drift from the baseline.
//
// Usage:
//
//	benchdiff -baseline BENCH_BASELINE.json -current result.json \
//	          [-max-regress 0.20] [-share-tol 0.02] [-step-tol 0.05] \
//	          [-fidelity-only] [-assert EXPR ...]
//	benchdiff -smoke -current result.json -assert EXPR [-assert EXPR ...]
//
// -assert evaluates one comparison against the current result JSON, so CI
// smoke checks need no python: EXPR is `path OP value` with OP one of
// >, >=, <, <=, ==, != and path a dot-separated descent into the JSON
// (array elements by index, array length via a trailing `len` segment,
// booleans compared as 1/0). Examples:
//
//	-assert 'cache_hit_rate>0.5'
//	-assert 'shard_jobs_per_sec.len==4'
//	-assert 'projection.n>0'
//
// -smoke skips the baseline comparison entirely and evaluates only the
// -assert expressions — the mode for results (merged or coordinated runs)
// that have no meaningful baseline. Without -smoke, -assert expressions run
// in addition to the baseline gates.
//
// Throughput gating is one-sided: running faster than baseline always
// passes. The baseline's jobs_per_sec — the decode-speed fields
// codec_records_per_sec (the hand-rolled NDJSON scanner) and
// colbin_records_per_sec (the columnar block reader) — the columnar
// end-to-end jobs_per_sec_columns, and the file-parallel indexed decode
// jobs_per_sec_parallel_file are conservative floors chosen to hold across
// CI runner generations; fidelity fields are deterministic for a given seed
// and compared tightly. Each codec gate only engages when both result files
// carry its field, so older baselines stay comparable.
//
// -fidelity-only skips the timing gates and compares only the
// deterministic aggregates — the mode the distributed shard-merge smoke
// uses, where the merged result JSON carries no timing fields. When both
// results carry the cdf/projection sketch sections, those are compared for
// exact equality: the multi-process merge is defined to be bit-identical
// to the single-process sharded run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"reflect"
	"strconv"
	"strings"

	"repro/internal/version"
)

// result mirrors the paibench schema fields benchdiff compares.
type result struct {
	Schema     string  `json:"schema"`
	Jobs       int     `json:"jobs"`
	Seed       int64   `json:"seed"`
	Backend    string  `json:"backend"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// CodecRecordsPerSec is the decode-only NDJSON codec speed; zero in
	// result files predating the codec benchmark.
	CodecRecordsPerSec float64 `json:"codec_records_per_sec"`
	// ColbinRecordsPerSec is the decode-only columnar codec speed; zero in
	// result files predating the colbin codec.
	ColbinRecordsPerSec float64 `json:"colbin_records_per_sec"`
	// JobsPerSecColumns is the columnar end-to-end throughput (block decode
	// through columnar sink fold); zero in result files predating it.
	JobsPerSecColumns float64 `json:"jobs_per_sec_columns"`
	// JobsPerSecParallelFile is the file-parallel indexed decode throughput
	// (seekable block index, 4 concurrent segment readers); zero in result
	// files predating the block index.
	JobsPerSecParallelFile float64 `json:"jobs_per_sec_parallel_file"`
	// CDF and Projection are the sketch-backed sections of -full/-merge
	// runs; decoded generically and compared for exact equality when both
	// sides carry them.
	CDF        map[string]any `json:"cdf"`
	Projection map[string]any `json:"projection"`
	Fidelity   struct {
		ClassJobShare   map[string]float64 `json:"class_job_share"`
		ClassCNodeShare map[string]float64 `json:"class_cnode_share"`
		OverallCNode    map[string]float64 `json:"overall_cnode_level"`
		MeanStepSec     float64            `json:"mean_step_sec"`
		P50StepSec      float64            `json:"p50_step_sec"`
		P99StepSec      float64            `json:"p99_step_sec"`
	} `json:"fidelity"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	basePath := fs.String("baseline", "BENCH_BASELINE.json", "golden baseline result JSON")
	curPath := fs.String("current", "", "fresh paibench result JSON")
	maxRegress := fs.Float64("max-regress", 0.20, "maximum allowed fractional throughput regression")
	shareTol := fs.Float64("share-tol", 0.02, "maximum absolute drift of any share aggregate")
	stepTol := fs.Float64("step-tol", 0.05, "maximum relative drift of step-time aggregates")
	fidelityOnly := fs.Bool("fidelity-only", false,
		"skip the throughput and codec gates; compare only deterministic aggregates (for merged shard results without timing fields)")
	var asserts assertList
	fs.Var(&asserts, "assert",
		"assert `path OP value` against the current result JSON (repeatable; e.g. 'cache_hit_rate>0.5', 'shard_jobs_per_sec.len==4')")
	smoke := fs.Bool("smoke", false,
		"standalone smoke mode: skip the baseline comparison and evaluate only the -assert expressions against -current")
	showVersion := fs.Bool("version", false, "print build/version information and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.Get())
		return nil
	}
	if *curPath == "" {
		return fmt.Errorf("-current is required")
	}
	if *smoke {
		if len(asserts) == 0 {
			return fmt.Errorf("-smoke needs at least one -assert expression")
		}
		return runAsserts(*curPath, asserts, stdout)
	}

	base, err := load(*basePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := load(*curPath)
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}
	if base.Seed != cur.Seed || base.Jobs != cur.Jobs {
		fmt.Fprintf(stdout, "warning: comparing different traces (baseline %d jobs seed %d, current %d jobs seed %d); share tolerances still apply\n",
			base.Jobs, base.Seed, cur.Jobs, cur.Seed)
	}

	var failures []string
	check := func(ok bool, format string, a ...any) {
		line := fmt.Sprintf(format, a...)
		if ok {
			fmt.Fprintf(stdout, "ok   %s\n", line)
		} else {
			fmt.Fprintf(stdout, "FAIL %s\n", line)
			failures = append(failures, line)
		}
	}

	if *fidelityOnly {
		fmt.Fprintln(stdout, "skip throughput and codec gates (-fidelity-only)")
	} else {
		floor := base.JobsPerSec * (1 - *maxRegress)
		check(cur.JobsPerSec >= floor,
			"throughput: %.0f jobs/sec vs baseline %.0f (floor %.0f at -max-regress %.0f%%)",
			cur.JobsPerSec, base.JobsPerSec, floor, *maxRegress*100)

		// Decode hot paths (NDJSON scanner, columnar block reader), each
		// gated the same one-sided way once both results measure it.
		if base.CodecRecordsPerSec > 0 && cur.CodecRecordsPerSec > 0 {
			codecFloor := base.CodecRecordsPerSec * (1 - *maxRegress)
			check(cur.CodecRecordsPerSec >= codecFloor,
				"codec: %.0f records/sec vs baseline %.0f (floor %.0f at -max-regress %.0f%%)",
				cur.CodecRecordsPerSec, base.CodecRecordsPerSec, codecFloor, *maxRegress*100)
		}
		if base.ColbinRecordsPerSec > 0 && cur.ColbinRecordsPerSec > 0 {
			colbinFloor := base.ColbinRecordsPerSec * (1 - *maxRegress)
			check(cur.ColbinRecordsPerSec >= colbinFloor,
				"colbin: %.0f records/sec vs baseline %.0f (floor %.0f at -max-regress %.0f%%)",
				cur.ColbinRecordsPerSec, base.ColbinRecordsPerSec, colbinFloor, *maxRegress*100)
		}
		if base.JobsPerSecColumns > 0 && cur.JobsPerSecColumns > 0 {
			columnsFloor := base.JobsPerSecColumns * (1 - *maxRegress)
			check(cur.JobsPerSecColumns >= columnsFloor,
				"columns: %.0f jobs/sec vs baseline %.0f (floor %.0f at -max-regress %.0f%%)",
				cur.JobsPerSecColumns, base.JobsPerSecColumns, columnsFloor, *maxRegress*100)
		}
		if base.JobsPerSecParallelFile > 0 && cur.JobsPerSecParallelFile > 0 {
			parFloor := base.JobsPerSecParallelFile * (1 - *maxRegress)
			check(cur.JobsPerSecParallelFile >= parFloor,
				"parallel-file: %.0f jobs/sec vs baseline %.0f (floor %.0f at -max-regress %.0f%%)",
				cur.JobsPerSecParallelFile, base.JobsPerSecParallelFile, parFloor, *maxRegress*100)
		}
	}

	// Sketch sections: deterministic for a given trace, and the
	// multi-process merge is bit-identical to the single-process sharded
	// run, so equality is exact.
	if base.CDF != nil && cur.CDF != nil {
		check(reflect.DeepEqual(base.CDF, cur.CDF), "cdf section identical")
	}
	if base.Projection != nil && cur.Projection != nil {
		check(reflect.DeepEqual(base.Projection, cur.Projection), "projection section identical")
	}

	compareShares := func(name string, base, cur map[string]float64) {
		for key, b := range base {
			c := cur[key]
			check(math.Abs(c-b) <= *shareTol,
				"%s[%s]: %.4f vs baseline %.4f (tol %.4f)", name, key, c, b, *shareTol)
		}
	}
	compareShares("class_job_share", base.Fidelity.ClassJobShare, cur.Fidelity.ClassJobShare)
	compareShares("class_cnode_share", base.Fidelity.ClassCNodeShare, cur.Fidelity.ClassCNodeShare)
	compareShares("overall_cnode_level", base.Fidelity.OverallCNode, cur.Fidelity.OverallCNode)

	relOK := func(b, c float64) bool {
		if b == 0 {
			return c == 0
		}
		return math.Abs(c-b)/math.Abs(b) <= *stepTol
	}
	check(relOK(base.Fidelity.MeanStepSec, cur.Fidelity.MeanStepSec),
		"mean_step_sec: %.5f vs baseline %.5f (rel tol %.0f%%)",
		cur.Fidelity.MeanStepSec, base.Fidelity.MeanStepSec, *stepTol*100)
	check(relOK(base.Fidelity.P50StepSec, cur.Fidelity.P50StepSec),
		"p50_step_sec: %.5f vs baseline %.5f (rel tol %.0f%%)",
		cur.Fidelity.P50StepSec, base.Fidelity.P50StepSec, *stepTol*100)
	check(relOK(base.Fidelity.P99StepSec, cur.Fidelity.P99StepSec),
		"p99_step_sec: %.5f vs baseline %.5f (rel tol %.0f%%)",
		cur.Fidelity.P99StepSec, base.Fidelity.P99StepSec, *stepTol*100)

	if len(asserts) > 0 {
		doc, err := loadAny(*curPath)
		if err != nil {
			return fmt.Errorf("current: %w", err)
		}
		if err := evalAsserts(doc, asserts, func(ok bool, line string) {
			check(ok, "%s", line)
		}); err != nil {
			return err
		}
	}

	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s) against %s", len(failures), *basePath)
	}
	fmt.Fprintln(stdout, "benchdiff: no regressions")
	return nil
}

// assertList collects repeated -assert flags.
type assertList []string

func (a *assertList) String() string { return strings.Join(*a, ", ") }
func (a *assertList) Set(v string) error {
	if strings.TrimSpace(v) == "" {
		return fmt.Errorf("empty assertion")
	}
	*a = append(*a, v)
	return nil
}

// runAsserts is -smoke mode: every -assert expression evaluated against the
// current result, no baseline involved.
func runAsserts(curPath string, asserts assertList, stdout io.Writer) error {
	doc, err := loadAny(curPath)
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}
	failures := 0
	if err := evalAsserts(doc, asserts, func(ok bool, line string) {
		if ok {
			fmt.Fprintf(stdout, "ok   %s\n", line)
		} else {
			fmt.Fprintf(stdout, "FAIL %s\n", line)
			failures++
		}
	}); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d assertion(s) failed against %s", failures, curPath)
	}
	fmt.Fprintf(stdout, "benchdiff: %d assertion(s) hold\n", len(asserts))
	return nil
}

// evalAsserts evaluates every expression against doc, reporting each
// outcome through report — the one assertion loop both the -smoke path and
// the baseline-comparison path share.
func evalAsserts(doc any, asserts assertList, report func(ok bool, line string)) error {
	for _, expr := range asserts {
		ok, desc, err := evalAssert(doc, expr)
		if err != nil {
			return fmt.Errorf("assert %q: %w", expr, err)
		}
		report(ok, "assert "+desc)
	}
	return nil
}

// assertOps lists the comparison operators, two-character ones first so
// ">=" is never misread as ">" followed by "=0.5".
var assertOps = []struct {
	tok string
	ok  func(got, want float64) bool
}{
	{">=", func(g, w float64) bool { return g >= w }},
	{"<=", func(g, w float64) bool { return g <= w }},
	{"==", func(g, w float64) bool { return g == w }},
	{"!=", func(g, w float64) bool { return g != w }},
	{">", func(g, w float64) bool { return g > w }},
	{"<", func(g, w float64) bool { return g < w }},
}

// evalAssert evaluates one `path OP value` expression against a generically
// decoded result document. It returns whether the assertion holds and a
// rendered description carrying the observed value.
func evalAssert(doc any, expr string) (ok bool, desc string, err error) {
	for _, op := range assertOps {
		i := strings.Index(expr, op.tok)
		if i < 0 {
			continue
		}
		path := strings.TrimSpace(expr[:i])
		rhs := strings.TrimSpace(expr[i+len(op.tok):])
		if path == "" || rhs == "" {
			return false, "", fmt.Errorf("want `path %s value`", op.tok)
		}
		want, perr := strconv.ParseFloat(rhs, 64)
		if perr != nil {
			return false, "", fmt.Errorf("right-hand side %q is not a number", rhs)
		}
		got, lerr := lookup(doc, path)
		if lerr != nil {
			return false, "", lerr
		}
		return op.ok(got, want), fmt.Sprintf("%s %s %s (observed %v)", path, op.tok, rhs, got), nil
	}
	return false, "", fmt.Errorf("no comparison operator (>, >=, <, <=, ==, !=)")
}

// lookup descends a dot-separated path through decoded JSON: object fields
// by name, array elements by index, array length via a `len` segment, and
// booleans as 1/0.
func lookup(v any, path string) (float64, error) {
	cur := v
	for _, seg := range strings.Split(path, ".") {
		switch node := cur.(type) {
		case map[string]any:
			next, ok := node[seg]
			if !ok {
				return 0, fmt.Errorf("no field %q in path %q", seg, path)
			}
			cur = next
		case []any:
			if seg == "len" {
				cur = float64(len(node))
				continue
			}
			i, err := strconv.Atoi(seg)
			if err != nil || i < 0 || i >= len(node) {
				return 0, fmt.Errorf("array segment %q in path %q (have %d elements; use an index or `len`)", seg, path, len(node))
			}
			cur = node[i]
		default:
			return 0, fmt.Errorf("path %q descends past scalar at %q", path, seg)
		}
	}
	switch n := cur.(type) {
	case float64:
		return n, nil
	case bool:
		if n {
			return 1, nil
		}
		return 0, nil
	case nil:
		return 0, fmt.Errorf("path %q is null", path)
	default:
		return 0, fmt.Errorf("path %q is %T, not a number (address array lengths with `len`)", path, cur)
	}
}

// loadAny decodes a result file generically for -assert paths, still
// pinning the schema so an unrelated JSON file fails loudly.
func loadAny(path string) (any, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var doc map[string]any
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, err
	}
	if s, _ := doc["schema"].(string); s != "paibench/1" {
		return nil, fmt.Errorf("%s: unexpected schema %q", path, doc["schema"])
	}
	return doc, nil
}

func load(path string) (*result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r result
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, err
	}
	if r.Schema != "paibench/1" {
		return nil, fmt.Errorf("%s: unexpected schema %q", path, r.Schema)
	}
	return &r, nil
}
