// Command paibench measures the streaming evaluation pipeline end to end:
// it generates a parameterized synthetic trace (10k to millions of jobs),
// streams it through a registered evaluation backend without ever
// materializing it, and emits a machine-readable result JSON — throughput,
// allocation rates, peak heap, cache effectiveness, per-shard throughput,
// NDJSON codec speed, and the aggregate fidelity of the streamed trace
// against the paper's Fig. 5 / Sec. III-D headline statistics.
//
// Usage:
//
//	paibench [-jobs N] [-seed S] [-backend name] [-par N] [-shards N]
//	         [-cache N] [-cache-bytes N] [-distinct N] [-codec] [-full]
//	         [-o result.json]
//	paibench -trace FILE [-format auto|json|ndjson|colbin] [flags]
//	paibench -trace FILE -par-file N [-microshard G] [flags]
//	paibench -trace FILE -replay [-policy P] [-servers N] [-queue-limit Q]
//	         [-straggler-frac F] [-straggler-mult M] [-replay-steps S]
//	         [-replay-snapshot FILE] [flags]
//	paibench -emit-shard shard.snap -shards M -shard-index K [flags]
//	paibench -merge [-o result.json] shard0.snap shard1.snap ...
//	paibench -coordinate ADDR [-workers N] [-chaos N] [-shard-timeout D]
//	         [-retries N] [flags]
//	paibench -coordinate ADDR -trace FILE [-workers N] [-slow N]
//	         [-slow-delay D] [-microshard G] [-shard-timeout D] [flags]
//	paibench -worker HOST:PORT [-fail-after N]
//	paibench -worker HOST:PORT -steal [-hint JOBS_PER_SEC] [-slow-delay D]
//
// With -shards N the trace is split into N generator partitions drained
// concurrently by independent worker sets into per-shard accumulators and
// folded with the exact merge (Engine.EvaluateSources). Multi-shard mode
// models the production fast path, where traces are heavily repetitive —
// the same feature records recur thousands of times (the motivation for
// content-keyed result caching) — so it defaults to a repetitive trace
// (-distinct 4096) with the result cache on (-cache 16384). Single-shard
// mode defaults to the cold path: every job distinct, no cache — the
// configuration the golden baseline gates. Every default is overridable:
// -distinct 0 forces a fully distinct trace, -cache 0 disables the cache
// in any mode. -cache-bytes swaps the entry budget for an adaptive byte
// budget (entry count derived from the measured entry footprint).
//
// Distributed evaluation splits one logical run across OS processes:
// a worker invoked with -emit-shard evaluates exactly one of the M
// partitions (-shard-index K of -shards M) through the full report sink —
// breakdown aggregates, CDF sketches, projection summary — and writes its
// versioned binary snapshot to a file instead of a result JSON. A
// coordinator invoked with -merge folds any number of snapshot files —
// sorted by the shard index carried in each snapshot's provenance, so
// argument order cannot change the output bytes — into the final result
// JSON. Because per-shard folds and the shard-index merge order are
// deterministic, the merged snapshot is byte-identical to a single-process
// -shards M run over the same parameters (compare with benchdiff
// -fidelity-only).
//
// Networked coordination replaces the snapshot files with TCP:
// `-coordinate ADDR` listens, hands one shard assignment at a time to every
// connected worker, streams each worker's snapshot back over the
// connection, and folds them exactly like -merge. `-workers N` spawns N
// local worker processes for the zero-config single-machine path;
// `-worker HOST:PORT` connects out from any machine. A worker that dies
// mid-shard (or exceeds -shard-timeout) has its shard requeued to another
// worker, up to -retries attempts per shard; provenance carried in every
// snapshot guards the fold against duplicates and foreign runs, so the
// retried merged result is still byte-identical to the single-process
// -shards M -full run. -chaos N gives the first N spawned workers
// -fail-after, which hard-exits the worker (exit 137, the kill -9 status)
// mid-shard — the failure-injection smoke CI runs on every push.
//
// -full runs the same full report sink in a single process, adding the
// cdf/projection sections to the result JSON; the timing gates of CI use
// the default breakdown-only sink, so -full numbers are not comparable to
// the golden baseline.
//
// With -trace FILE a recorded trace is evaluated instead of a generated
// one; the file's codec is sniffed (or forced with -format), and a columnar
// (colbin) trace automatically takes the block-granular evaluation path —
// with sink output byte-identical to the same records decoded from NDJSON,
// which is what the convert→evaluate CI smoke pins with benchdiff
// -fidelity-only.
//
// -par-file N decodes an index-bearing colbin -trace with N concurrent
// segment readers: the file's block index is partitioned into micro-shard
// cells of -microshard records (rounded to block boundaries), each cell
// folds into its own sink, and the per-cell sinks merge in cell order.
// Because the grid is a pure function of the file and the grain, the
// merged snapshot is byte-identical for every N — compare -par-file 1
// against -par-file 4 with benchdiff -fidelity-only. A file written
// without the index footer falls back to the sequential scan with a
// stderr note. The result carries jobs_per_sec_parallel_file (also
// measured on a fixed sample in generated-trace runs, which is what the
// golden baseline gates).
//
// -coordinate ADDR -trace FILE distributes the same partition grid over
// work-stealing range workers (-worker HOST:PORT -steal): the coordinator
// hands each worker a contiguous cell range sized by its advertised
// -hint throughput (even split when any worker abstains), workers stream
// one snapshot per cell back as it completes, and a worker that makes no
// progress for -shard-timeout has its unfinished tail re-split and
// reassigned to faster workers. At-most-once folding plus cell-order
// merge keep the final result byte-identical to the single-process
// -trace -par-file run at the same -microshard grain, no matter how
// cells were distributed, stolen, or retried. -slow N makes N spawned
// workers deliberate stragglers (sleeping -slow-delay before every cell
// after their first) — the steal-injection smoke CI runs; the result
// JSON reports micro_shards, micro_shard_assignments, stolen_cells,
// resplits and coord_workers.
//
// -replay switches from infinite-capacity evaluation to discrete-event
// cluster replay: the -trace stream is scheduled onto -servers servers under
// a registered policy (-policy, default fifo), per-job occupancy comes from
// the engine's backend, and the result JSON gains a replay section (admission
// counters, makespan, utilization, queue-delay quantiles) that benchdiff
// -smoke gates. -replay-snapshot additionally writes the merged fleet-sink
// snapshot; because the replay event loop is deterministic, two runs over the
// same trace and parameters produce byte-identical snapshot files at any
// -par (the replay smoke CI compares them with cmp).
//
// With -codec the jobs additionally round-trip through the NDJSON
// encoder/decoder over an in-process pipe (one pipe per shard), measuring
// the full decode→shard→evaluate→fold path a recorded trace would take.
// Independently of -codec, every run reports decode-only codec speed,
// measured on in-memory samples after the pipeline finishes so they cannot
// disturb the heap statistics: the legacy codec_ns_per_record /
// codec_records_per_sec fields (NDJSON, cfg-shaped sample, what the golden
// baseline has always gated) plus the per-format codecs section (every
// codec on one shared repetitive sample) and its gated top-level mirror
// colbin_records_per_sec.
//
// The result JSON doubles as the golden baseline for CI regression gating:
// BENCH_BASELINE.json at the repository root is a checked-in paibench
// result, and cmd/benchdiff fails the build when a run regresses against
// it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	pai "repro"
	"repro/internal/version"
)

// Result is the machine-readable paibench output (schema "paibench/1";
// fields are strictly additive so older baselines stay comparable).
type Result struct {
	Schema  string `json:"schema"`
	Jobs    int    `json:"jobs"`
	Seed    int64  `json:"seed"`
	Backend string `json:"backend"`
	Workers int    `json:"workers"`
	Codec   bool   `json:"codec"`

	// Shards is the number of generator partitions drained concurrently;
	// DistinctJobs is the number of distinct feature records across the
	// whole trace (0 = every job distinct).
	Shards       int `json:"shards"`
	DistinctJobs int `json:"distinct_jobs"`

	ElapsedSec float64 `json:"elapsed_sec"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// JobsPerSecColumns is the columnar end-to-end figure: the shared
	// repetitive colbin sample streamed through StreamColumnsInto (block
	// decode → block evaluation → columnar sink fold) with the result cache
	// on, snapshot-pinned byte-identical to record streaming. Gated
	// one-sided by benchdiff.
	JobsPerSecColumns float64 `json:"jobs_per_sec_columns,omitempty"`
	// JobsPerSecParallelFile is the file-parallel decode figure: the shared
	// repetitive colbin sample evaluated through the seekable block index
	// with 4 concurrent segment readers (Engine.EvaluateIndexedColumns),
	// snapshot-pinned byte-identical to the one-consumer grid fold every
	// pass. Gated one-sided by benchdiff. A -trace run with -par-file
	// reports the real file's figure here instead.
	JobsPerSecParallelFile float64 `json:"jobs_per_sec_parallel_file,omitempty"`
	// ShardJobsPerSec is each partition's delivered jobs over the wall
	// clock of the whole run.
	ShardJobsPerSec []float64 `json:"shard_jobs_per_sec,omitempty"`

	// Result-cache effectiveness (zero when the cache is off).
	CacheEntries int     `json:"cache_entries"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Rotation/eviction churn and byte-budget telemetry (WithCacheBytes).
	CacheRotations     uint64  `json:"cache_rotations,omitempty"`
	CacheEvictions     uint64  `json:"cache_evictions,omitempty"`
	CacheTargetBytes   int64   `json:"cache_target_bytes,omitempty"`
	CacheAvgEntryBytes float64 `json:"cache_avg_entry_bytes,omitempty"`
	// Block-granular cache effectiveness on the column path (zero when the
	// cache is off or the run never streams blocks).
	CacheBlockHits   uint64 `json:"cache_block_hits,omitempty"`
	CacheBlockMisses uint64 `json:"cache_block_misses,omitempty"`

	AllocsPerJob  float64 `json:"allocs_per_job"`
	BytesPerJob   float64 `json:"bytes_per_job"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`

	// Decode-only speed of the NDJSON codec, measured on an in-memory
	// sample outside the pipeline's heap-sampling window. Kept for baseline
	// continuity; the per-format Codecs section is the unambiguous report.
	CodecNsPerRecord   float64 `json:"codec_ns_per_record"`
	CodecRecordsPerSec float64 `json:"codec_records_per_sec"`

	// Codecs maps trace-format name -> decode-only stats, every format
	// measured on the same repetitive in-memory sample (the production
	// shape): ndjson record-at-a-time, colbin whole-block ingest.
	Codecs map[string]CodecStats `json:"codecs,omitempty"`
	// ColbinRecordsPerSec mirrors Codecs["colbin"].RecordsPerSec at top
	// level — the columnar ingest floor CI gates (benchdiff -assert).
	ColbinRecordsPerSec float64 `json:"colbin_records_per_sec,omitempty"`

	// TraceFile/TraceFormat identify a recorded trace evaluated with -trace
	// (instead of the generated synthetic trace).
	TraceFile   string `json:"trace_file,omitempty"`
	TraceFormat string `json:"trace_format,omitempty"`

	// Work-stealing scheduler statistics (populated by -coordinate -trace):
	// micro-shard grid size, range assignments sent, cells stolen from
	// stragglers past the per-cell deadline, range re-splits, and workers
	// admitted.
	MicroShards           int `json:"micro_shards,omitempty"`
	MicroShardAssignments int `json:"micro_shard_assignments,omitempty"`
	StolenCells           int `json:"stolen_cells,omitempty"`
	Resplits              int `json:"resplits,omitempty"`
	CoordWorkers          int `json:"coord_workers,omitempty"`

	Fidelity Fidelity `json:"fidelity"`

	// CDF and Projection report the sketch-backed sections; populated only
	// under -full and -merge, where the full report sink runs.
	CDF        *CDFSection  `json:"cdf,omitempty"`
	Projection *ProjSection `json:"projection,omitempty"`

	// Replay reports the discrete-event cluster replay (-replay): the -trace
	// stream scheduled onto a finite GPU inventory instead of evaluated at
	// infinite capacity.
	Replay *ReplaySection `json:"replay,omitempty"`

	Note string `json:"note,omitempty"`
}

// CodecStats is one trace codec's decode-only speed.
type CodecStats struct {
	NsPerRecord   float64 `json:"ns_per_record"`
	RecordsPerSec float64 `json:"records_per_sec"`
}

// Quantiles is a compact p50/p90/p99 triple of one sketched distribution.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// CDFSection carries the per-class CDF headline quantiles of the Fig. 8
// sketches (job level).
type CDFSection struct {
	// WeightsFraction maps class -> quantiles of the weights-traffic time
	// fraction (Fig. 8b-d headline lines).
	WeightsFraction map[string]Quantiles `json:"weights_fraction"`
	// EthernetFraction is the all-workloads Ethernet-attribution fraction
	// (Fig. 8a headline line).
	EthernetFraction Quantiles `json:"ethernet_fraction"`
}

// ProjSection carries the streamed Fig. 9 projection summary.
type ProjSection struct {
	N                     int     `json:"n"`
	FracNodeNotSped       float64 `json:"frac_node_not_sped"`
	FracThroughputNotSped float64 `json:"frac_throughput_not_sped"`
	MeanNodeSpeedup       float64 `json:"mean_node_speedup"`
	MeanThroughputSpeedup float64 `json:"mean_throughput_speedup"`
	NodeSpeedupP50        float64 `json:"node_speedup_p50"`
	NodeSpeedupP99        float64 `json:"node_speedup_p99"`
}

// ReplaySection is the fleet-level summary of one -replay run: admission
// and completion counters, the schedule's makespan against the arrival
// horizon, aggregate and peak-window GPU utilization, and queue-delay
// quantiles from the per-class CDF sink — the numbers the replay smoke CI
// asserts with benchdiff -smoke.
type ReplaySection struct {
	Policy     string `json:"policy"`
	Servers    int    `json:"servers"`
	GPUs       int    `json:"gpus"`
	Submitted  int    `json:"submitted"`
	Completed  int    `json:"completed"`
	Rejected   int    `json:"rejected"`
	Stragglers int    `json:"stragglers"`

	MakespanSec float64 `json:"makespan_sec"`
	HorizonSec  float64 `json:"horizon_sec"`
	GPUSeconds  float64 `json:"gpu_seconds"`
	// Utilization is GPUSeconds / (GPUs x Makespan); PeakWindowUtilization
	// is the busiest utilization-sink window.
	Utilization           float64 `json:"utilization"`
	PeakWindowUtilization float64 `json:"peak_window_utilization"`

	MeanQueueDelaySec float64 `json:"mean_queue_delay_sec"`
	QueueDelayP50     float64 `json:"queue_delay_p50"`
	QueueDelayP99     float64 `json:"queue_delay_p99"`
	MaxQueueDepth     int     `json:"max_queue_depth"`
}

// Fidelity holds the streamed trace's collective aggregates next to the
// paper's published headline values, so a baseline diff catches both
// performance and statistical drift.
type Fidelity struct {
	ClassJobShare   map[string]float64 `json:"class_job_share"`
	ClassCNodeShare map[string]float64 `json:"class_cnode_share"`
	// OverallCNode maps data_io/weights/compute to the cNode-level overall
	// share (Sec. III-D reports weights 62%, compute 35%).
	OverallCNode map[string]float64 `json:"overall_cnode_level"`
	MeanStepSec  float64            `json:"mean_step_sec"`
	P50StepSec   float64            `json:"p50_step_sec"`
	P99StepSec   float64            `json:"p99_step_sec"`
	// PaperAbsDelta maps headline-stat name to |streamed - paper|:
	// ps_cnode_share (0.81), overall_weights (0.62), overall_compute (0.35).
	PaperAbsDelta map[string]float64 `json:"paper_abs_delta"`
}

// Paper headline references: Fig. 5b (PS/Worker cNode share ~81%) and
// Sec. III-D (cNode-level communication 62%, computation 35%).
const (
	paperPSCNodeShare  = 0.81
	paperOverallComm   = 0.62
	paperOverallComput = 0.35
)

// Multi-shard defaults: a production-shaped repetitive trace small enough
// that its distinct set fits the default cache with room to spare.
const (
	autoDistinct     = 4096
	autoCacheEntries = 16384
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "paibench:", err)
		os.Exit(1)
	}
}

// config is the fully resolved benchmark parameterization.
type config struct {
	jobs        int
	seed        int64
	shards      int
	shardIndex  int // -1 = all partitions in this process
	distinct    int
	cache       int
	cacheBytes  int64
	par         int
	backendName string
	codec       bool
	full        bool
	// tracePath/traceFormat: evaluate a recorded trace file instead of the
	// generated synthetic trace (single-shard only).
	tracePath   string
	traceFormat string
	// parFile > 0 decodes an index-bearing colbin -trace with that many
	// concurrent segment readers over the deterministic partition grid;
	// grain is the grid's cell size in records (-microshard).
	parFile int
	grain   int
	// failAfter > 0 hard-exits the process (exit 137, like kill -9) after
	// that many jobs of the first partition — the chaos injection the
	// coordinator smoke uses to exercise the retry path.
	failAfter int
}

// newEngine builds the evaluation engine a resolved config describes; the
// one construction path run(), worker mode and coordinate mode share, so a
// worker reconstitutes exactly the engine the coordinator parameterized.
func newEngine(cfg config) (*pai.Engine, error) {
	opts := []pai.Option{pai.WithBackend(cfg.backendName)}
	if cfg.par > 0 {
		opts = append(opts, pai.WithParallelism(cfg.par))
	}
	switch {
	case cfg.cacheBytes > 0:
		opts = append(opts, pai.WithCacheBytes(cfg.cacheBytes))
	case cfg.cache > 0:
		opts = append(opts, pai.WithCache(cfg.cache))
	}
	return pai.New(opts...)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("paibench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobs := fs.Int("jobs", 100000, "trace size to stream (10k-1M+)")
	seed := fs.Int64("seed", 1, "trace generation seed")
	backendName := fs.String("backend", "analytical",
		"evaluation backend ("+strings.Join(pai.Backends(), ", ")+")")
	par := fs.Int("par", 0, "evaluation worker-pool size (0 = all CPUs, runtime.NumCPU)")
	shards := fs.Int("shards", 1, "generator partitions drained concurrently (multi-trace sharding; 0 = all CPUs, runtime.NumCPU)")
	shardIndex := fs.Int("shard-index", -1,
		"evaluate only this partition of the -shards grid (worker mode; requires -emit-shard)")
	distinct := fs.Int("distinct", -1,
		"distinct feature records across the trace; later jobs are exact resubmissions (-1 = auto: 0 for -shards 1, 4096 otherwise; 0 = all distinct)")
	cacheEntries := fs.Int("cache", -1,
		"result-cache entry budget (-1 = auto: 0 for -shards 1, 16384 otherwise; 0 = off)")
	cacheBytes := fs.Int64("cache-bytes", 0,
		"result-cache byte budget; entry budget adapts to the measured entry footprint (overrides -cache; 0 = off)")
	codec := fs.Bool("codec", false, "round-trip jobs through the NDJSON codec over a pipe (one per shard)")
	tracePath := fs.String("trace", "",
		"evaluate this recorded trace file instead of generating (single shard; -jobs/-seed/-distinct ignored)")
	traceFormat := fs.String("format", pai.TraceFormatAuto,
		fmt.Sprintf("with -trace: the file's format, one of %v or %q to sniff", pai.TraceFormats(), pai.TraceFormatAuto))
	parFile := fs.Int("par-file", 0,
		"with a colbin -trace: decode the file with this many concurrent segment readers over its block index (0 = off; a file without an index falls back to sequential decode); the merged sink is byte-identical to one reader")
	microshard := fs.Int("microshard", pai.DefaultGrainRecords,
		"partition-grid cell size in records for -par-file and -coordinate -trace (a cell never splits a block)")
	full := fs.Bool("full", false, "stream through the full report sink (breakdowns + CDF sketches + projection) and emit the cdf/projection sections")
	replayMode := fs.Bool("replay", false,
		"discrete-event cluster replay: schedule the -trace stream onto a finite GPU inventory and report the fleet-level replay section instead of the streaming benchmark")
	policy := fs.String("policy", "",
		"with -replay: scheduling policy ("+strings.Join(pai.SchedulerPolicies(), ", ")+"; default fifo)")
	servers := fs.Int("servers", pai.DefaultReplayServers,
		"with -replay: cluster capacity in servers (GPUs = servers x the config's GPUs per server)")
	queueLimit := fs.Int("queue-limit", 0,
		"with -replay: reject arrivals while the pending queue holds this many jobs (0 = unbounded)")
	stragglerFrac := fs.Float64("straggler-frac", 0,
		"with -replay: fraction of jobs sampled (deterministically in -seed) as stragglers")
	stragglerMult := fs.Float64("straggler-mult", 2,
		"with -replay -straggler-frac: occupancy multiplier (>= 1) applied to sampled stragglers")
	replaySteps := fs.Int("replay-steps", 1,
		"with -replay: steps every job runs for (occupancy = steps x modeled step time)")
	replaySnapshot := fs.String("replay-snapshot", "",
		"with -replay: write the merged fleet-sink snapshot (counters + queue-delay CDFs + utilization timeline) to this file; byte-identical across runs and -par values")
	emitShard := fs.String("emit-shard", "",
		"worker mode: write this process's full-sink snapshot to the given file instead of a result JSON")
	merge := fs.Bool("merge", false,
		"coordinator mode: merge the snapshot files given as positional arguments into the final result JSON")
	coordinate := fs.String("coordinate", "",
		"network coordinator mode: listen on this address (e.g. :7070 or 127.0.0.1:0), hand shards to connected workers, and fold their snapshots into the final result JSON")
	workers := fs.Int("workers", 0,
		"with -coordinate: local worker processes to spawn (0 = wait for external -worker connections)")
	chaos := fs.Int("chaos", 0,
		"with -coordinate -workers: give this many spawned workers -fail-after, so they die mid-shard (failure-injection smoke)")
	workerAddr := fs.String("worker", "",
		"network worker mode: connect to a coordinator at HOST:PORT and evaluate assigned shards until the run completes")
	steal := fs.Bool("steal", false,
		"with -worker: serve work-stealing micro-shard range assignments (the worker half of -coordinate -trace; implied for its spawned local workers)")
	hint := fs.Float64("hint", 0,
		"with -worker -steal: advertised jobs/sec throughput for capacity-weighted range sizing (0 = unknown, even split)")
	slow := fs.Int("slow", 0,
		"with -coordinate -trace -workers: make this many spawned workers deliberate stragglers (-slow-delay before every cell after their first), so their in-flight ranges are stolen (steal-injection smoke)")
	slowDelay := fs.Duration("slow-delay", 0,
		"with -worker -steal: sleep this long before every cell after the process's first (deliberate straggler); with -coordinate -trace, the delay handed to -slow workers (default 2s)")
	failAfter := fs.Int("fail-after", 0,
		"with -worker: hard-exit (code 137, like kill -9) after evaluating this many jobs of an assignment; with -coordinate, the value handed to -chaos workers (default 500)")
	shardTimeout := fs.Duration("shard-timeout", 2*time.Minute,
		"with -coordinate: per-shard attempt deadline before the shard is requeued to another worker; with -coordinate -trace, the per-cell progress deadline before a straggler's in-flight tail is re-split and stolen (0 = none)")
	retries := fs.Int("retries", 3,
		"with -coordinate: per-shard assignment budget, first attempt included")
	out := fs.String("o", "", "result JSON file (default stdout)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := fs.String("memprofile", "", "write an end-of-run heap profile to this file")
	showVersion := fs.Bool("version", false, "print build/version information and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.Get())
		return nil
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "paibench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // profile live objects, not transients
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "paibench: -memprofile:", err)
			}
		}()
	}
	modes := 0
	for _, on := range []bool{*merge, *emitShard != "", *coordinate != "", *workerAddr != "", *replayMode} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-merge, -emit-shard, -coordinate, -worker and -replay are mutually exclusive")
	}
	if *workerAddr != "" {
		if fs.NArg() > 0 {
			return fmt.Errorf("unexpected arguments %q in worker mode", fs.Args())
		}
		if *steal {
			return runRangeWorkerMode(*workerAddr, *hint, *slowDelay, stderr)
		}
		return runWorkerMode(*workerAddr, *failAfter, stderr)
	}
	if *steal {
		return fmt.Errorf("-steal is worker mode; it requires -worker")
	}
	if *merge {
		return runMerge(fs.Args(), *seed, *out, stdout, stderr)
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (snapshot files need -merge)", fs.Args())
	}
	if *jobs < 1 {
		return fmt.Errorf("-jobs must be positive, got %d", *jobs)
	}
	// 0 means "use every CPU" for the process-level concurrency knobs, so
	// scripts can say "saturate this machine" without probing its shape.
	if *par == 0 {
		*par = runtime.NumCPU()
	}
	if *shards == 0 {
		*shards = runtime.NumCPU()
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be positive, got %d", *shards)
	}
	if *shards > *jobs {
		return fmt.Errorf("-shards %d exceeds -jobs %d", *shards, *jobs)
	}
	if *parFile < 0 {
		return fmt.Errorf("-par-file must be non-negative, got %d", *parFile)
	}
	if *parFile > 0 && *tracePath == "" {
		return fmt.Errorf("-par-file decodes a recorded file; it requires a colbin -trace")
	}
	if *microshard < 1 {
		return fmt.Errorf("-microshard must be positive, got %d", *microshard)
	}
	if *shardIndex >= 0 && *emitShard == "" {
		return fmt.Errorf("-shard-index is worker mode; it requires -emit-shard")
	}
	if *shardIndex >= *shards {
		return fmt.Errorf("-shard-index %d out of range for -shards %d", *shardIndex, *shards)
	}
	if *tracePath != "" {
		if *shards > 1 || *shardIndex >= 0 || *emitShard != "" || *codec {
			return fmt.Errorf("-trace evaluates one recorded file; it excludes -shards, -emit-shard and -codec")
		}
	}
	if *replayMode {
		if *tracePath == "" {
			return fmt.Errorf("-replay schedules a recorded submission stream; it requires -trace")
		}
		if *parFile > 0 || *full {
			return fmt.Errorf("-replay has its own fleet sinks; it excludes -par-file and -full")
		}
	} else {
		var stray []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "policy", "servers", "queue-limit", "straggler-frac",
				"straggler-mult", "replay-steps", "replay-snapshot":
				stray = append(stray, "-"+f.Name)
			}
		})
		if len(stray) > 0 {
			return fmt.Errorf("%s require(s) -replay", strings.Join(stray, ", "))
		}
	}
	cfg := config{
		jobs: *jobs, seed: *seed, shards: *shards, shardIndex: *shardIndex,
		distinct: *distinct, cache: *cacheEntries, cacheBytes: *cacheBytes,
		par: *par, backendName: *backendName,
		codec: *codec, full: *full || *emitShard != "",
		tracePath: *tracePath, traceFormat: *traceFormat,
		parFile: *parFile, grain: *microshard,
	}
	if cfg.distinct < 0 {
		if cfg.shards > 1 {
			cfg.distinct = autoDistinct
		} else {
			cfg.distinct = 0
		}
	}
	if cfg.cache < 0 {
		if cfg.shards > 1 {
			cfg.cache = autoCacheEntries
		} else {
			cfg.cache = 0
		}
	}
	if cfg.distinct > cfg.jobs {
		cfg.distinct = 0 // a distinct budget beyond the trace is no repetition at all
	}

	if *coordinate != "" {
		if *workers < 0 || *chaos < 0 || *chaos > *workers {
			return fmt.Errorf("-chaos %d must be between 0 and -workers %d", *chaos, *workers)
		}
		if *retries < 1 {
			return fmt.Errorf("-retries %d: every shard needs at least one attempt", *retries)
		}
		if cfg.tracePath != "" {
			if *slow < 0 || *slow > *workers {
				return fmt.Errorf("-slow %d must be between 0 and -workers %d", *slow, *workers)
			}
			if *chaos > 0 {
				return fmt.Errorf("-chaos is shard-mode failure injection; -coordinate -trace uses -slow")
			}
			d := *slowDelay
			if *slow > 0 && d <= 0 {
				d = defaultSlowDelay
			}
			return runCoordinateTrace(cfg, *coordinate, *workers, *slow, d, *shardTimeout, *retries, *out, stdout, stderr)
		}
		if *slow > 0 {
			return fmt.Errorf("-slow injects stragglers into the work-stealing mode; it requires -coordinate -trace")
		}
		chaosFailAfter := *failAfter
		if chaosFailAfter <= 0 {
			chaosFailAfter = defaultChaosFailAfter
		}
		return runCoordinate(cfg, *coordinate, *workers, *chaos, chaosFailAfter, *shardTimeout, *retries, *out, stdout, stderr)
	}
	if *slow > 0 {
		return fmt.Errorf("-slow requires -coordinate -trace")
	}

	eng, err := newEngine(cfg)
	if err != nil {
		return err
	}

	if *emitShard != "" {
		return runEmitShard(eng, cfg, *emitShard, stderr)
	}

	if *replayMode {
		return runReplay(eng, cfg, replayParams{
			policy: *policy, servers: *servers, queueLimit: *queueLimit,
			stragglerFrac: *stragglerFrac, stragglerMult: *stragglerMult,
			steps: *replaySteps, snapshotPath: *replaySnapshot,
		}, *out, stdout, stderr)
	}

	res, err := measure(eng, cfg, stderr)
	if err != nil {
		return err
	}
	res.Backend = eng.Backend()
	res.Workers = eng.Parallelism()

	// Decode-only codec benchmarks, after the pipeline so the sample buffers
	// never show up in the pipeline's peak-heap measurement.
	res.CodecNsPerRecord, res.CodecRecordsPerSec, err = benchCodec(cfg)
	if err != nil {
		return err
	}
	var cbSample []byte
	res.Codecs, cbSample, err = benchCodecs(cfg)
	if err != nil {
		return err
	}
	res.ColbinRecordsPerSec = res.Codecs["colbin"].RecordsPerSec
	var blockHits, blockMisses uint64
	res.JobsPerSecColumns, blockHits, blockMisses, err = benchColumns(cfg, cbSample)
	if err != nil {
		return err
	}
	if cfg.tracePath == "" {
		// The sample-based figure feeds the baseline gate; a -trace -par-file
		// run already reported the real file's figure from measure().
		res.JobsPerSecParallelFile, err = benchParallelFile(cfg, cbSample)
		if err != nil {
			return err
		}
	}

	if err := writeResult(res, *out, stdout); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "paibench: %d jobs in %.2fs — %.0f jobs/sec (%d shard(s)), %.1f allocs/job, peak heap %.1f MiB, cache hit rate %.1f%%, codec %.0f ns/record, columnar %.0f jobs/sec (block cache %d/%d)\n",
		res.Jobs, res.ElapsedSec, res.JobsPerSec, res.Shards, res.AllocsPerJob,
		float64(res.PeakHeapBytes)/(1<<20), res.CacheHitRate*100, res.CodecNsPerRecord,
		res.JobsPerSecColumns, blockHits, blockHits+blockMisses)
	return nil
}

// replayParams is the -replay parameterization: the scheduling policy,
// the cluster inventory, admission control, and straggler injection.
type replayParams struct {
	policy        string
	servers       int
	queueLimit    int
	stragglerFrac float64
	stragglerMult float64
	steps         int
	snapshotPath  string
}

// runReplay is -replay mode: stream the recorded -trace through the
// discrete-event replay engine against a finite cluster, emit a result JSON
// whose replay section carries the fleet-level summary, and optionally write
// the merged fleet-sink snapshot for byte-identity checks. Replay is
// deterministic — the same trace and parameters produce byte-identical
// snapshots at any -par.
func runReplay(eng *pai.Engine, cfg config, rp replayParams, out string, stdout, stderr io.Writer) error {
	f, err := os.Open(cfg.tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	src, err := pai.OpenTraceSource(f, cfg.traceFormat)
	if err != nil {
		return fmt.Errorf("%s: %w", cfg.tracePath, err)
	}

	opts := []pai.ReplayOption{
		pai.WithReplayServers(rp.servers),
		pai.WithReplayStragglerSeed(cfg.seed),
	}
	if rp.policy != "" {
		opts = append(opts, pai.WithReplayPolicy(rp.policy))
	}
	if rp.queueLimit > 0 {
		opts = append(opts, pai.WithReplayQueueLimit(rp.queueLimit))
	}
	if rp.stragglerFrac > 0 {
		opts = append(opts, pai.WithReplayStragglers(rp.stragglerFrac, rp.stragglerMult))
	}
	if rp.steps > 1 {
		opts = append(opts, pai.WithReplaySteps(rp.steps))
	}

	start := time.Now()
	rr, err := eng.Replay(context.Background(), src, opts...)
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Seconds()

	st := rr.Stats
	sec := &ReplaySection{
		Policy:                st.Policy,
		Servers:               st.Servers,
		GPUs:                  st.GPUs,
		Submitted:             st.Submitted,
		Completed:             st.Completed,
		Rejected:              st.Rejected,
		Stragglers:            st.Stragglers,
		MakespanSec:           st.Makespan,
		HorizonSec:            st.Horizon,
		GPUSeconds:            st.GPUSeconds,
		Utilization:           st.Utilization,
		PeakWindowUtilization: rr.Utilization.Peak(),
		MeanQueueDelaySec:     st.MeanQueueDelay(),
		MaxQueueDepth:         st.MaxQueueDepth,
	}
	if ov := rr.QueueDelay.Overall(); ov.Weight() > 0 {
		sec.QueueDelayP50 = ov.Quantile(0.50)
		sec.QueueDelayP99 = ov.Quantile(0.99)
	}

	if rp.snapshotPath != "" {
		sf, err := os.Create(rp.snapshotPath)
		if err != nil {
			return err
		}
		meta := fmt.Sprintf("replay policy=%s servers=%d seed=%d trace=%s",
			st.Policy, st.Servers, cfg.seed, cfg.tracePath)
		if err := pai.WriteSinkSnapshotMeta(sf, rr.Sinks, meta); err != nil {
			sf.Close()
			return fmt.Errorf("-replay-snapshot: %w", err)
		}
		if err := sf.Close(); err != nil {
			return err
		}
	}

	res := &Result{
		Schema:      "paibench/1",
		Jobs:        st.Submitted,
		Seed:        cfg.seed,
		Backend:     eng.Backend(),
		Workers:     eng.Parallelism(),
		Shards:      1,
		ElapsedSec:  elapsed,
		JobsPerSec:  float64(st.Submitted) / elapsed,
		TraceFile:   cfg.tracePath,
		TraceFormat: cfg.traceFormat,
		Replay:      sec,
	}
	if err := writeResult(res, out, stdout); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "paibench: replayed %d jobs on %d servers (%d GPUs, policy %s) in %.2fs — %d completed, %d rejected, %d stragglers, makespan %.0fs, utilization %.1f%%, mean wait %.1fs\n",
		st.Submitted, st.Servers, st.GPUs, st.Policy, elapsed,
		st.Completed, st.Rejected, st.Stragglers, st.Makespan,
		st.Utilization*100, st.MeanQueueDelay())
	return nil
}

// writeResult emits the result JSON to the -o file or stdout.
func writeResult(res *Result, out string, stdout io.Writer) error {
	w := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(res)
}

// shardParams splits the trace across cfg.shards generator partitions:
// partition k gets an even slice of the job and distinct budgets and its
// own seed, so partitions are diverse across shards and repetitive within
// one — the shape of production multi-trace workloads.
func shardParams(cfg config) []pai.TraceParams {
	ps := make([]pai.TraceParams, cfg.shards)
	for k := range ps {
		p := pai.DefaultTraceParams()
		p.Seed = cfg.seed + int64(k)
		p.NumJobs = cfg.jobs / cfg.shards
		if k < cfg.jobs%cfg.shards {
			p.NumJobs++
		}
		if cfg.distinct > 0 {
			p.DistinctJobs = cfg.distinct / cfg.shards
			if k < cfg.distinct%cfg.shards {
				p.DistinctJobs++
			}
			if p.DistinctJobs < 1 {
				p.DistinctJobs = 1
			}
		}
		ps[k] = p
	}
	return ps
}

// measure streams the parameterized trace through the engine, sampling the
// heap as it goes, and assembles the result.
func measure(eng *pai.Engine, cfg config, stderr io.Writer) (*Result, error) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// Sample peak live heap while the pipeline runs: with O(workers)
	// memory the peak is flat in the job count.
	peak := newPeakSampler(5 * time.Millisecond)

	start := time.Now()
	sink, counts, fileParallel, err := stream(eng, cfg, stderr)
	elapsed := time.Since(start)
	peak.stop()
	if err != nil {
		return nil, err
	}
	n := 0
	for _, c := range counts {
		n += c
	}
	if cfg.tracePath == "" && n != cfg.jobs {
		return nil, fmt.Errorf("streamed %d of %d jobs", n, cfg.jobs)
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	acc, err := breakdownOf(sink)
	if err != nil {
		return nil, err
	}
	fid, err := fidelity(acc)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Schema:        "paibench/1",
		Jobs:          n,
		Seed:          cfg.seed,
		Codec:         cfg.codec,
		Shards:        cfg.shards,
		DistinctJobs:  cfg.distinct,
		ElapsedSec:    elapsed.Seconds(),
		JobsPerSec:    float64(n) / elapsed.Seconds(),
		AllocsPerJob:  float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerJob:   float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		PeakHeapBytes: peak.max(),
		Fidelity:      *fid,
	}
	if cfg.tracePath != "" {
		res.TraceFile = cfg.tracePath
		res.TraceFormat = cfg.traceFormat
	}
	if fileParallel {
		// The main evaluation was the indexed grid decode with cfg.parFile
		// segment readers; mirror it into the field benchdiff gates.
		res.JobsPerSecParallelFile = res.JobsPerSec
	}
	if cfg.shards > 1 {
		res.ShardJobsPerSec = make([]float64, len(counts))
		for i, c := range counts {
			res.ShardJobsPerSec[i] = float64(c) / elapsed.Seconds()
		}
	}
	st := eng.CacheStats()
	res.CacheEntries = cfg.cache
	res.CacheHits = st.Hits
	res.CacheMisses = st.Misses
	res.CacheHitRate = st.HitRate()
	res.CacheRotations = st.Rotations
	res.CacheEvictions = st.Evictions
	res.CacheTargetBytes = st.TargetBytes
	res.CacheAvgEntryBytes = st.AvgEntryBytes
	res.CacheBlockHits = st.BlockHits
	res.CacheBlockMisses = st.BlockMisses
	if cfg.full {
		res.CDF, res.Projection, err = sketchSections(sink)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// sinkFactory returns the per-shard sink builder: the full report sink
// (breakdowns + CDF sketches + projection) under -full/-emit-shard, the
// breakdown accumulator alone on the timing-gated default path.
func sinkFactory(eng *pai.Engine, cfg config) func() (pai.Sink, error) {
	if cfg.full {
		return func() (pai.Sink, error) { return eng.NewReportSink(pai.ToAllReduceLocal) }
	}
	return func() (pai.Sink, error) { return pai.NewBreakdownAccumulator(), nil }
}

// stream drains the shard partitions through the engine — directly, or each
// through the NDJSON codec over its own in-process pipe — into the merged
// sink, returning per-shard delivered counts. Worker mode (shardIndex >= 0)
// evaluates exactly one partition of the same grid, so per-process runs
// compose into the identical merged state. fileParallel reports whether the
// indexed file-parallel path actually ran (-par-file on an index-bearing
// colbin trace, no fallback).
func stream(eng *pai.Engine, cfg config, stderr io.Writer) (sink pai.Sink, counts []int, fileParallel bool, err error) {
	if cfg.tracePath != "" {
		// Recorded-trace mode: one source straight off the file. A columnar
		// trace automatically rides the block-granular fast path inside the
		// pipeline; the sink bytes are identical either way.
		f, err := os.Open(cfg.tracePath)
		if err != nil {
			return nil, nil, false, err
		}
		defer f.Close()
		if cfg.parFile > 0 {
			// File-parallel mode: serve disjoint segments of the block index
			// to cfg.parFile concurrent readers. A file written without the
			// index falls back to the sequential scan below, as the format
			// promises.
			st, err := f.Stat()
			if err != nil {
				return nil, nil, false, err
			}
			ir, err := pai.NewIndexedColumnReader(f, st.Size())
			switch {
			case err == nil:
				sink, counts, err := eng.EvaluateIndexedColumns(context.Background(), ir, cfg.grain, cfg.parFile, sinkFactory(eng, cfg))
				return sink, counts, true, err
			case errors.Is(err, pai.ErrNoColumnIndex):
				fmt.Fprintf(stderr, "paibench: %s carries no block index; -par-file %d falls back to sequential decode\n", cfg.tracePath, cfg.parFile)
			default:
				return nil, nil, false, fmt.Errorf("-par-file: %w", err)
			}
		}
		src, err := pai.OpenTraceSource(f, cfg.traceFormat)
		if err != nil {
			return nil, nil, false, err
		}
		sink, counts, err := eng.EvaluateSourcesInto(context.Background(), sinkFactory(eng, cfg), src)
		return sink, counts, false, err
	}
	params := shardParams(cfg)
	if cfg.shardIndex >= 0 {
		params = params[cfg.shardIndex : cfg.shardIndex+1]
	}
	srcs := make([]pai.JobSource, len(params))
	var cleanup []func()
	defer func() {
		for _, f := range cleanup {
			f()
		}
	}()
	for i, p := range params {
		src, err := pai.NewTraceSource(p)
		if err != nil {
			return nil, nil, false, err
		}
		if !cfg.codec {
			srcs[i] = src
			continue
		}
		// Codec mode: generator → NDJSON encoder → pipe → streaming
		// decoder. The pipe bounds in-flight bytes, so memory stays
		// O(workers) here too.
		pr, pw := io.Pipe()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			enc := pai.NewTraceEncoder(pw)
			for {
				f, err := src.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					pw.CloseWithError(err)
					return
				}
				if err := enc.Encode(f); err != nil {
					pw.CloseWithError(err)
					return
				}
			}
			pw.CloseWithError(enc.Flush())
		}()
		srcs[i] = pai.NewTraceDecoder(pr)
		cleanup = append(cleanup, func() {
			pr.Close()
			wg.Wait()
		})
	}
	if cfg.failAfter > 0 {
		// Chaos injection: die abruptly partway into the first partition.
		srcs[0] = &killSource{src: srcs[0], after: cfg.failAfter}
	}
	fsink, fcounts, ferr := eng.EvaluateSourcesInto(context.Background(), sinkFactory(eng, cfg), srcs...)
	if ferr != nil {
		return nil, fcounts, false, ferr
	}
	return fsink, fcounts, false, nil
}

// killSource models a worker lost to kill -9: after yielding `after` jobs
// it terminates the whole process — no snapshot, no protocol goodbye, just
// a dead TCP connection for the coordinator to notice. 137 is the exit
// status a SIGKILLed process reports.
type killSource struct {
	src   pai.JobSource
	after int
	seen  int
}

func (k *killSource) Next() (pai.Features, error) {
	if k.seen >= k.after {
		os.Exit(137)
	}
	k.seen++
	return k.src.Next()
}

// breakdownOf extracts the breakdown accumulator from a sink (directly or
// out of a MultiSink).
func breakdownOf(sink pai.Sink) (*pai.BreakdownAccumulator, error) {
	switch s := sink.(type) {
	case *pai.BreakdownAccumulator:
		return s, nil
	case *pai.MultiSink:
		for _, inner := range s.Sinks() {
			if acc, ok := inner.(*pai.BreakdownAccumulator); ok {
				return acc, nil
			}
		}
	}
	return nil, fmt.Errorf("sink %q carries no breakdown accumulator", sink.Kind())
}

// sketchSections assembles the cdf/projection result sections from a full
// report sink.
func sketchSections(sink pai.Sink) (*CDFSection, *ProjSection, error) {
	ms, ok := sink.(*pai.MultiSink)
	if !ok {
		return nil, nil, fmt.Errorf("sink %q is not a full report sink", sink.Kind())
	}
	cdf := &CDFSection{WeightsFraction: map[string]Quantiles{}}
	var proj *ProjSection
	for _, inner := range ms.Sinks() {
		switch s := inner.(type) {
		case *pai.ComponentCDFSink:
			for _, class := range s.Classes() {
				sk, err := s.CDF(class, pai.JobLevel, pai.CompWeights)
				if err != nil {
					return nil, nil, err
				}
				cdf.WeightsFraction[class.String()] = quantilesOf(sk)
			}
		case *pai.HardwareCDFSink:
			sk, err := s.CDF(pai.JobLevel, pai.HWEthernet)
			if err != nil {
				return nil, nil, err
			}
			cdf.EthernetFraction = quantilesOf(sk)
		case *pai.ProjectionSink:
			if s.N() == 0 {
				// No PS/Worker job streamed by (tiny traces); omit the
				// section rather than failing the whole run.
				continue
			}
			sum, err := s.Summary()
			if err != nil {
				return nil, nil, err
			}
			node := s.NodeSpeedups()
			proj = &ProjSection{
				N:                     sum.N,
				FracNodeNotSped:       sum.FracNodeNotSped,
				FracThroughputNotSped: sum.FracThroughputNotSped,
				MeanNodeSpeedup:       sum.MeanNodeSpeedup,
				MeanThroughputSpeedup: sum.MeanThroughputSpeedup,
				NodeSpeedupP50:        node.Quantile(0.50),
				NodeSpeedupP99:        node.Quantile(0.99),
			}
		}
	}
	return cdf, proj, nil
}

func quantilesOf(s *pai.Sketch) Quantiles {
	return Quantiles{P50: s.Quantile(0.50), P90: s.Quantile(0.90), P99: s.Quantile(0.99)}
}

// shardMetaBase renders the run-identifying provenance base: everything
// that changes the evaluated jobs or their breakdowns. Every shard of one
// run must share it; the shard index is the one field allowed to differ.
func shardMetaBase(cfg config) string {
	return fmt.Sprintf("paibench jobs=%d seed=%d shards=%d distinct=%d backend=%s",
		cfg.jobs, cfg.seed, cfg.shards, cfg.distinct, cfg.backendName)
}

// shardMeta is the full per-shard provenance string: the base plus this
// process's shard index.
func shardMeta(cfg config) string {
	return pai.ShardSnapshotMeta(shardMetaBase(cfg), cfg.shardIndex)
}

// runEmitShard is worker mode: evaluate this process's partition(s) through
// the full report sink and write the framed snapshot, stamped with the run
// parameters so the coordinator can refuse foreign shards.
func runEmitShard(eng *pai.Engine, cfg config, path string, stderr io.Writer) error {
	start := time.Now()
	sink, counts, _, err := stream(eng, cfg, stderr)
	if err != nil {
		return err
	}
	n := 0
	for _, c := range counts {
		n += c
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pai.WriteSinkSnapshotMeta(f, sink, shardMeta(cfg)); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	which := "all partitions"
	if cfg.shardIndex >= 0 {
		which = fmt.Sprintf("partition %d/%d", cfg.shardIndex, cfg.shards)
	}
	fmt.Fprintf(stderr, "paibench: emitted %s (%d jobs) to %s in %.2fs\n",
		which, n, path, time.Since(start).Seconds())
	return nil
}

// runMerge is coordinator mode: fold the shard snapshot files into the
// final result JSON. Snapshots are sorted by the shard index carried in
// their provenance before folding — argument order (and thus the order
// retried shards happened to be collected in) cannot change the output
// bytes. The merge is byte-for-byte the same reduction
// Engine.EvaluateSourcesInto applies in-process, so a single -shards M run
// and an M-process -emit-shard/-merge run agree exactly.
func runMerge(paths []string, seed int64, out string, stdout, stderr io.Writer) error {
	if len(paths) == 0 {
		return fmt.Errorf("-merge needs at least one snapshot file argument")
	}
	type shardSnap struct {
		path     string
		sink     pai.Sink
		index    int
		hasIndex bool
	}
	snaps := make([]shardSnap, 0, len(paths))
	seen := map[int]string{}
	var runMeta string
	for i, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		sink, meta, err := pai.ReadSinkSnapshotMeta(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		// Refuse to fold shards of different runs: everything but the
		// shard index must agree. Snapshots without provenance (written
		// through the generic API) skip the check.
		if m := pai.SnapshotMetaBase(meta); m != "" {
			if i > 0 && runMeta != "" && m != runMeta {
				return fmt.Errorf("%s: shard from a different run (%q vs %q)", path, m, runMeta)
			}
			runMeta = m
		}
		idx, ok := pai.SnapshotShardIndex(meta)
		if ok {
			// At-most-once, like the network coordinator: folding one shard
			// twice (a copied or retried snapshot file) would silently
			// double-count its jobs in every aggregate.
			if prev, dup := seen[idx]; dup {
				return fmt.Errorf("%s: duplicate snapshot for already-included shard %d (first seen in %s)", path, idx, prev)
			}
			seen[idx] = path
		}
		snaps = append(snaps, shardSnap{path: path, sink: sink, index: idx, hasIndex: ok})
	}
	// Pin the fold order to the shard grid: indexed snapshots first, by
	// index; unindexed ones (generic API, whole-run snapshots) keep their
	// argument order after them.
	sort.SliceStable(snaps, func(i, j int) bool {
		a, b := snaps[i], snaps[j]
		if a.hasIndex != b.hasIndex {
			return a.hasIndex
		}
		return a.hasIndex && a.index < b.index
	})
	var total pai.Sink
	for _, s := range snaps {
		if total == nil {
			total = s.sink
			continue
		}
		if err := total.Merge(s.sink); err != nil {
			return fmt.Errorf("%s: %w", s.path, err)
		}
	}
	res := &Result{
		Seed:   seed,
		Shards: len(paths),
		Note:   fmt.Sprintf("merged from %d shard snapshot(s); timing fields not populated", len(paths)),
	}
	if err := finishFoldedResult(total, res, out, stdout); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "paibench: merged %d snapshot(s), %d jobs\n", len(paths), res.Jobs)
	return nil
}

// finishFoldedResult fills the deterministic sections a folded sink can
// provide — fidelity always, cdf/projection when it is a full report sink —
// and writes the result JSON: the shared tail of every coordinator mode
// (-merge and -coordinate), so the two emit the same schema by
// construction.
func finishFoldedResult(sink pai.Sink, res *Result, out string, stdout io.Writer) error {
	acc, err := breakdownOf(sink)
	if err != nil {
		return err
	}
	fid, err := fidelity(acc)
	if err != nil {
		return err
	}
	res.Schema = "paibench/1"
	res.Jobs = acc.N()
	res.Fidelity = *fid
	if _, isMulti := sink.(*pai.MultiSink); isMulti {
		if res.CDF, res.Projection, err = sketchSections(sink); err != nil {
			return err
		}
	}
	return writeResult(res, out, stdout)
}

// coordPayloadVersion tags the assignment payload a coordinator hands its
// workers; a worker from a different release refuses the run instead of
// silently evaluating the wrong parameterization.
const coordPayloadVersion = "paibench/coord/1"

// defaultChaosFailAfter is how many jobs a -chaos worker evaluates before
// dying, when -fail-after is not given: early enough to be unambiguously
// mid-shard for every CI-sized trace.
const defaultChaosFailAfter = 500

// encodePayload renders the full run parameterization a worker needs to
// reconstitute the coordinator's engine and trace grid.
func encodePayload(cfg config) []byte {
	return []byte(fmt.Sprintf("%s jobs=%d seed=%d shards=%d distinct=%d cache=%d cache-bytes=%d par=%d codec=%t backend=%s",
		coordPayloadVersion, cfg.jobs, cfg.seed, cfg.shards, cfg.distinct,
		cfg.cache, cfg.cacheBytes, cfg.par, cfg.codec, cfg.backendName))
}

// parsePayload is the worker-side inverse of encodePayload.
func parsePayload(p []byte) (config, error) {
	fields := strings.Fields(string(p))
	if len(fields) == 0 || fields[0] != coordPayloadVersion {
		return config{}, fmt.Errorf("assignment payload is not %q", coordPayloadVersion)
	}
	cfg := config{shardIndex: -1, full: true}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return config{}, fmt.Errorf("malformed payload field %q", f)
		}
		var err error
		switch key {
		case "jobs":
			cfg.jobs, err = strconv.Atoi(val)
		case "seed":
			cfg.seed, err = strconv.ParseInt(val, 10, 64)
		case "shards":
			cfg.shards, err = strconv.Atoi(val)
		case "distinct":
			cfg.distinct, err = strconv.Atoi(val)
		case "cache":
			cfg.cache, err = strconv.Atoi(val)
		case "cache-bytes":
			cfg.cacheBytes, err = strconv.ParseInt(val, 10, 64)
		case "par":
			cfg.par, err = strconv.Atoi(val)
		case "codec":
			cfg.codec, err = strconv.ParseBool(val)
		case "backend":
			cfg.backendName = val
		default:
			return config{}, fmt.Errorf("unknown payload field %q", key)
		}
		if err != nil {
			return config{}, fmt.Errorf("payload field %q: %w", f, err)
		}
	}
	if cfg.jobs < 1 || cfg.shards < 1 || cfg.backendName == "" {
		return config{}, fmt.Errorf("payload %q names no runnable benchmark", p)
	}
	return cfg, nil
}

// runWorkerMode is network worker mode: connect to the coordinator,
// reconstitute the run from each assignment's payload, evaluate the
// assigned partition through the full report sink, and stream the snapshot
// back. failAfter > 0 arms chaos injection (see killSource).
func runWorkerMode(addr string, failAfter int, stderr io.Writer) error {
	runner := func(ctx context.Context, a pai.ShardAssignment) (pai.Sink, string, int, error) {
		cfg, err := parsePayload(a.Payload)
		if err != nil {
			return nil, "", 0, err
		}
		if a.Shards != cfg.shards {
			return nil, "", 0, fmt.Errorf("assignment grid %d does not match payload shards %d", a.Shards, cfg.shards)
		}
		cfg.shardIndex = a.Index
		cfg.failAfter = failAfter
		eng, err := newEngine(cfg)
		if err != nil {
			return nil, "", 0, err
		}
		start := time.Now()
		sink, counts, _, err := stream(eng, cfg, stderr)
		if err != nil {
			return nil, "", 0, err
		}
		n := 0
		for _, c := range counts {
			n += c
		}
		fmt.Fprintf(stderr, "paibench worker: shard %d/%d attempt %d: %d jobs in %.2fs\n",
			a.Index, a.Shards, a.Attempt, n, time.Since(start).Seconds())
		return sink, shardMeta(cfg), n, nil
	}
	fmt.Fprintf(stderr, "paibench: worker connecting to %s\n", addr)
	return pai.ServeShardWorker(context.Background(), addr, runner)
}

// syncWriter serializes writes from the coordinator's own logging and the
// spawned workers' piped stderr, which arrive from separate goroutines.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// runCoordinate is network coordinator mode: listen, optionally spawn local
// worker processes (the zero-config path), hand out the cfg.shards
// partitions, fold the returned snapshots — retrying shards lost to worker
// death or the per-shard deadline — and emit the same full result JSON a
// -merge run produces.
func runCoordinate(cfg config, addr string, workers, chaos, chaosFailAfter int, shardTimeout time.Duration, retries int, out string, stdout, stderr io.Writer) error {
	sw := &syncWriter{w: stderr}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(sw, "paibench: coordinating %d shard(s) on %s (%d local worker(s), %d chaos)\n",
		cfg.shards, ln.Addr(), workers, chaos)

	var cmds []*exec.Cmd
	if workers > 0 {
		exe, err := os.Executable()
		if err != nil {
			return err
		}
		for i := 0; i < workers; i++ {
			wargs := []string{"-worker", ln.Addr().String()}
			if i < chaos {
				wargs = append(wargs, "-fail-after", strconv.Itoa(chaosFailAfter))
			}
			cmd := exec.Command(exe, wargs...)
			cmd.Stderr = sw
			// The marker lets a test binary recognize it was re-executed as
			// a worker; the real paibench binary ignores it.
			cmd.Env = append(os.Environ(), "PAIBENCH_EXEC_WORKER=1")
			if err := cmd.Start(); err != nil {
				return fmt.Errorf("spawn worker %d: %w", i, err)
			}
			cmds = append(cmds, cmd)
		}
	}
	defer func() {
		// Chaos workers are already dead (exit 137) and healthy ones exit
		// after the coordinator's done message or connection close; the
		// kill only sweeps up workers stranded by a coordinator error.
		for _, cmd := range cmds {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// The coordinator evaluates nothing itself, but folding through the
	// same report-sink factory the single-process run uses pins the fold
	// base to the expected sink shape.
	eng, err := newEngine(cfg)
	if err != nil {
		return err
	}
	opts := pai.CoordinatorOptions{
		ShardTimeout: shardTimeout,
		MaxAttempts:  retries,
		Provenance:   shardMetaBase(cfg),
		// Spawn-local workers must connect promptly, so arm the stall
		// detector from the start: if they all die before (or after)
		// dialing in, the run fails at -shard-timeout instead of hanging.
		ExpectWorkers: workers > 0,
		NewSink:       func() (pai.Sink, error) { return eng.NewReportSink(pai.ToAllReduceLocal) },
		Logf:          func(format string, args ...any) { fmt.Fprintf(sw, format+"\n", args...) },
	}
	start := time.Now()
	sink, _, err := pai.CoordinateShards(context.Background(), ln, cfg.shards, encodePayload(cfg), opts)
	if err != nil {
		return err
	}
	res := &Result{
		Seed:         cfg.seed,
		Backend:      cfg.backendName,
		Shards:       cfg.shards,
		DistinctJobs: cfg.distinct,
		Note:         fmt.Sprintf("coordinated %d shard(s) over TCP; timing fields not populated", cfg.shards),
	}
	if err := finishFoldedResult(sink, res, out, stdout); err != nil {
		return err
	}
	fmt.Fprintf(sw, "paibench: coordinated %d shard(s), %d jobs in %.2fs\n",
		cfg.shards, res.Jobs, time.Since(start).Seconds())
	return nil
}

// coordTracePayloadVersion tags the range-assignment payload of the
// work-stealing trace mode; workers from a different release (or handed a
// static-shard payload) refuse the run.
const coordTracePayloadVersion = "paibench/coord-trace/1"

// defaultSlowDelay is the straggler injection handed to -slow workers when
// -slow-delay is not given: long enough to trip any CI-sized -shard-timeout.
const defaultSlowDelay = 2 * time.Second

// traceMetaBase is the run-identifying provenance base of a work-stealing
// trace run: everything that changes the partition grid or the per-cell
// folds. Every cell snapshot of one run must carry it.
func traceMetaBase(cfg config) string {
	return fmt.Sprintf("paibench trace=%s microshard=%d backend=%s",
		cfg.tracePath, cfg.grain, cfg.backendName)
}

// encodeTracePayload renders the work-stealing run description a range
// worker needs: the trace file, the grid grain, and the engine
// parameterization. Fields are space-separated key=value pairs, so the
// trace path must not contain spaces (the coordinator rejects one).
func encodeTracePayload(cfg config) []byte {
	return []byte(fmt.Sprintf("%s trace=%s microshard=%d cache=%d cache-bytes=%d par=%d backend=%s",
		coordTracePayloadVersion, cfg.tracePath, cfg.grain,
		cfg.cache, cfg.cacheBytes, cfg.par, cfg.backendName))
}

// parseTracePayload is the worker-side inverse of encodeTracePayload.
func parseTracePayload(p []byte) (config, error) {
	fields := strings.Fields(string(p))
	if len(fields) == 0 || fields[0] != coordTracePayloadVersion {
		return config{}, fmt.Errorf("range payload is not %q", coordTracePayloadVersion)
	}
	cfg := config{shardIndex: -1, shards: 1, full: true}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return config{}, fmt.Errorf("malformed payload field %q", f)
		}
		var err error
		switch key {
		case "trace":
			cfg.tracePath = val
		case "microshard":
			cfg.grain, err = strconv.Atoi(val)
		case "cache":
			cfg.cache, err = strconv.Atoi(val)
		case "cache-bytes":
			cfg.cacheBytes, err = strconv.ParseInt(val, 10, 64)
		case "par":
			cfg.par, err = strconv.Atoi(val)
		case "backend":
			cfg.backendName = val
		default:
			return config{}, fmt.Errorf("unknown payload field %q", key)
		}
		if err != nil {
			return config{}, fmt.Errorf("payload field %q: %w", f, err)
		}
	}
	if cfg.tracePath == "" || cfg.grain < 1 || cfg.backendName == "" {
		return config{}, fmt.Errorf("payload %q names no runnable trace evaluation", p)
	}
	return cfg, nil
}

// openIndexedTrace opens an index-bearing colbin trace for grid evaluation.
// The caller closes the returned file after it is done with the reader.
func openIndexedTrace(path string) (*os.File, *pai.ColumnIndexedReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	ir, err := pai.NewIndexedColumnReader(f, st.Size())
	if err != nil {
		f.Close()
		if errors.Is(err, pai.ErrNoColumnIndex) {
			return nil, nil, fmt.Errorf("%s carries no block index (rewrite it with tracegen or convert to current colbin): %w", path, err)
		}
		return nil, nil, err
	}
	return f, ir, nil
}

// runRangeWorkerMode is the work-stealing worker (-worker ADDR -steal):
// connect, advertise the throughput hint, and for every assigned cell range
// fold each cell of the trace's partition grid into its own full report
// sink, streaming one snapshot per cell back the moment it completes.
// slowDelay > 0 makes this worker a deliberate straggler: it sleeps that
// long before every cell after the process's first, so the coordinator's
// per-cell deadline steals its in-flight tail (the e2e steal smoke).
func runRangeWorkerMode(addr string, hint float64, slowDelay time.Duration, stderr io.Writer) error {
	sawFirst := false
	runner := func(ctx context.Context, a pai.MicroShardAssignment, emit func(cell int, sink pai.Sink, meta string, jobs int) error) error {
		cfg, err := parseTracePayload(a.Payload)
		if err != nil {
			return err
		}
		eng, err := newEngine(cfg)
		if err != nil {
			return err
		}
		f, ir, err := openIndexedTrace(cfg.tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if n := len(ir.Index().Partition(cfg.grain)); n != a.Cells {
			return fmt.Errorf("%s yields a %d-cell grid at grain %d, assignment names %d", cfg.tracePath, n, cfg.grain, a.Cells)
		}
		base := traceMetaBase(cfg)
		factory := func() (pai.Sink, error) { return eng.NewReportSink(pai.ToAllReduceLocal) }
		for cell := a.Lo; cell < a.Hi; cell++ {
			if slowDelay > 0 && sawFirst {
				time.Sleep(slowDelay)
			}
			sawFirst = true
			start := time.Now()
			sink, n, err := eng.EvaluateIndexedCell(ctx, ir, cfg.grain, cell, factory)
			if err != nil {
				return err
			}
			if err := emit(cell, sink, pai.ShardSnapshotMeta(base, cell), n); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "paibench worker: cell %d/%d attempt %d: %d jobs in %.2fs\n",
				cell, a.Cells, a.Attempt, n, time.Since(start).Seconds())
		}
		return nil
	}
	fmt.Fprintf(stderr, "paibench: range worker connecting to %s\n", addr)
	return pai.ServeMicroShardWorker(context.Background(), addr, hint, runner)
}

// runCoordinateTrace is the work-stealing coordinator (-coordinate -trace):
// partition the trace's block index into micro-shard cells, serve
// capacity-sized cell ranges to range workers, steal stalled tails past the
// per-cell deadline, and fold the per-cell snapshots in cell order — the
// merged result is byte-identical to the single-process
// `-trace FILE -par-file N` run over the same grain, no matter how cells
// were distributed, stolen, or retried.
func runCoordinateTrace(cfg config, addr string, workers, slow int, slowDelay time.Duration, cellTimeout time.Duration, retries int, out string, stdout, stderr io.Writer) error {
	if strings.ContainsAny(cfg.tracePath, " \t") {
		return fmt.Errorf("-coordinate -trace: path %q contains whitespace, which the payload encoding cannot carry", cfg.tracePath)
	}
	sw := &syncWriter{w: stderr}
	f, ir, err := openIndexedTrace(cfg.tracePath)
	if err != nil {
		return err
	}
	cells := len(ir.Index().Partition(cfg.grain))
	f.Close() // the coordinator folds snapshots; it never reads the trace body
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(sw, "paibench: coordinating %d micro-shard(s) of %s on %s (%d local worker(s), %d slow)\n",
		cells, cfg.tracePath, ln.Addr(), workers, slow)

	var cmds []*exec.Cmd
	if workers > 0 {
		exe, err := os.Executable()
		if err != nil {
			return err
		}
		for i := 0; i < workers; i++ {
			wargs := []string{"-worker", ln.Addr().String(), "-steal"}
			if i < slow {
				wargs = append(wargs, "-slow-delay", slowDelay.String())
			}
			cmd := exec.Command(exe, wargs...)
			cmd.Stderr = sw
			cmd.Env = append(os.Environ(), "PAIBENCH_EXEC_WORKER=1")
			if err := cmd.Start(); err != nil {
				return fmt.Errorf("spawn worker %d: %w", i, err)
			}
			cmds = append(cmds, cmd)
		}
	}
	defer func() {
		for _, cmd := range cmds {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	eng, err := newEngine(cfg)
	if err != nil {
		return err
	}
	opts := pai.MicroShardOptions{
		CellTimeout:   cellTimeout,
		MaxAttempts:   retries,
		Provenance:    traceMetaBase(cfg),
		ExpectWorkers: workers > 0,
		NewSink:       func() (pai.Sink, error) { return eng.NewReportSink(pai.ToAllReduceLocal) },
		Logf:          func(format string, args ...any) { fmt.Fprintf(sw, format+"\n", args...) },
	}
	start := time.Now()
	sink, _, stats, err := pai.CoordinateMicroShards(context.Background(), ln, cells, encodeTracePayload(cfg), opts)
	if err != nil {
		return err
	}
	res := &Result{
		Seed:                  cfg.seed,
		Backend:               cfg.backendName,
		Shards:                1,
		TraceFile:             cfg.tracePath,
		TraceFormat:           cfg.traceFormat,
		MicroShards:           cells,
		MicroShardAssignments: stats.Assignments,
		StolenCells:           stats.StolenCells,
		Resplits:              stats.Resplits,
		CoordWorkers:          stats.Workers,
		Note:                  fmt.Sprintf("work-stealing coordination over %d micro-shard(s); timing fields not populated", cells),
	}
	if err := finishFoldedResult(sink, res, out, stdout); err != nil {
		return err
	}
	fmt.Fprintf(sw, "paibench: coordinated %d micro-shard(s), %d jobs in %.2fs (%d assignment(s), %d stolen cell(s), %d re-split(s))\n",
		cells, res.Jobs, time.Since(start).Seconds(), stats.Assignments, stats.StolenCells, stats.Resplits)
	return nil
}

// benchCodec measures decode-only NDJSON speed: a sample of the seed trace
// is encoded once into memory, then decoded repeatedly until enough time
// has elapsed for a stable ns/record figure.
func benchCodec(cfg config) (nsPerRecord, recordsPerSec float64, err error) {
	p := pai.DefaultTraceParams()
	p.Seed = cfg.seed
	p.NumJobs = cfg.jobs
	if p.NumJobs > 50000 {
		p.NumJobs = 50000
	}
	src, err := pai.NewTraceSource(p)
	if err != nil {
		return 0, 0, err
	}
	var buf bytes.Buffer
	enc := pai.NewTraceEncoder(&buf)
	for {
		f, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, 0, err
		}
		if err := enc.Encode(f); err != nil {
			return 0, 0, err
		}
	}
	if err := enc.Flush(); err != nil {
		return 0, 0, err
	}

	const minDuration = 200 * time.Millisecond
	var records int
	start := time.Now()
	for time.Since(start) < minDuration {
		dec := pai.NewTraceDecoder(bytes.NewReader(buf.Bytes()))
		for {
			_, err := dec.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return 0, 0, err
			}
			records++
		}
	}
	elapsed := time.Since(start)
	if records == 0 {
		return 0, 0, fmt.Errorf("codec benchmark decoded no records")
	}
	nsPerRecord = float64(elapsed.Nanoseconds()) / float64(records)
	recordsPerSec = float64(records) / elapsed.Seconds()
	return nsPerRecord, recordsPerSec, nil
}

// benchCodecs measures each streaming codec's decode-only speed on one
// shared repetitive sample (the production trace shape the columnar format
// targets): NDJSON record-at-a-time, colbin block-at-a-time — each codec's
// natural ingest loop. Reported per format so the two are never conflated.
// The encoded colbin sample is returned for the end-to-end columnar
// benchmark to reuse, so both report on identical bytes.
func benchCodecs(cfg config) (map[string]CodecStats, []byte, error) {
	p := pai.DefaultTraceParams()
	p.Seed = cfg.seed
	// Fixed sample shape so the reported figure is comparable across runs
	// regardless of -jobs: production-repetitive (the paper's traces are
	// dominated by recurring jobs, so a block names a few hundred distinct
	// jobs — the shape the colbin per-block dictionary is built for).
	p.NumJobs = 50000
	p.DistinctJobs = 512
	src, err := pai.NewTraceSource(p)
	if err != nil {
		return nil, nil, err
	}
	var nd, cb bytes.Buffer
	ndw, err := pai.NewTraceWriter(&nd, "ndjson")
	if err != nil {
		return nil, nil, err
	}
	cbw, err := pai.NewTraceWriter(&cb, "colbin")
	if err != nil {
		return nil, nil, err
	}
	for {
		f, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if err := ndw.Write(f); err != nil {
			return nil, nil, err
		}
		if err := cbw.Write(f); err != nil {
			return nil, nil, err
		}
	}
	if err := ndw.Flush(); err != nil {
		return nil, nil, err
	}
	if err := cbw.Flush(); err != nil {
		return nil, nil, err
	}

	stats := map[string]CodecStats{}
	ndStats, err := timeDecode(func() (int, error) {
		dec := pai.NewTraceDecoder(bytes.NewReader(nd.Bytes()))
		n := 0
		for {
			if _, err := dec.Next(); err != nil {
				if errors.Is(err, io.EOF) {
					return n, nil
				}
				return n, err
			}
			n++
		}
	})
	if err != nil {
		return nil, nil, err
	}
	stats["ndjson"] = ndStats
	cbStats, err := timeDecode(func() (int, error) {
		r := pai.NewColumnReader(bytes.NewReader(cb.Bytes()))
		var c pai.Columns
		n := 0
		for {
			if err := r.NextBlock(&c); err != nil {
				if errors.Is(err, io.EOF) {
					return n, nil
				}
				return n, err
			}
			n += c.Len()
		}
	})
	if err != nil {
		return nil, nil, err
	}
	stats["colbin"] = cbStats
	return stats, cb.Bytes(), nil
}

// benchColumns measures the columnar end-to-end pipeline — colbin block
// decode → block evaluation → columnar sink fold — on the shared repetitive
// sample, with the result cache enabled so the block-granular cache engages
// on repeated blocks (the sample's 512-distinct cycle divides the block
// size, so identical blocks recur). Every timed pass folds a fresh breakdown
// accumulator whose snapshot is pinned byte-identical to the
// record-streaming path over the same bytes, so the reported figure can
// never drift from the scalar semantics.
func benchColumns(cfg config, sample []byte) (jobsPerSec float64, blockHits, blockMisses uint64, err error) {
	ecfg := cfg
	if ecfg.cacheBytes == 0 && ecfg.cache <= 0 {
		ecfg.cache = autoCacheEntries
	}
	ctx := context.Background()

	// Record-streaming oracle: same engine parameterization, per-record
	// delivery (the pre-columnar path).
	recEng, err := newEngine(ecfg)
	if err != nil {
		return 0, 0, 0, err
	}
	recSink := pai.NewBreakdownAccumulator()
	if _, err := recEng.EvaluateSource(ctx, pai.NewColumnReader(bytes.NewReader(sample)), func(r pai.StreamResult) error {
		return recSink.Add(r.Job, r.Times)
	}); err != nil {
		return 0, 0, 0, err
	}
	want, err := recSink.MarshalBinary()
	if err != nil {
		return 0, 0, 0, err
	}

	colEng, err := newEngine(ecfg)
	if err != nil {
		return 0, 0, 0, err
	}
	const minDuration = 200 * time.Millisecond
	records := 0
	start := time.Now()
	for records == 0 || time.Since(start) < minDuration {
		sink := pai.NewBreakdownAccumulator()
		n, err := colEng.StreamColumnsInto(ctx, pai.NewColumnReader(bytes.NewReader(sample)), sink)
		if err != nil {
			return 0, 0, 0, err
		}
		got, err := sink.MarshalBinary()
		if err != nil {
			return 0, 0, 0, err
		}
		if !bytes.Equal(got, want) {
			return 0, 0, 0, fmt.Errorf("columnar snapshot diverges from the record-streaming path")
		}
		records += n
	}
	elapsed := time.Since(start)
	st := colEng.CacheStats()
	return float64(records) / elapsed.Seconds(), st.BlockHits, st.BlockMisses, nil
}

// benchParallelFile measures the file-parallel decode path on the shared
// repetitive colbin sample: the seekable block index partitioned at
// one-block grain and served to 4 concurrent segment readers
// (Engine.EvaluateIndexedColumns). Every timed pass's snapshot is pinned
// bytes.Equal to the one-consumer grid fold over the same bytes, so the
// reported figure can never drift from the sequential semantics.
func benchParallelFile(cfg config, sample []byte) (float64, error) {
	const (
		// sampleGrain matches the colbin writer's default block size, so the
		// 50k-record sample yields enough cells to keep 4 readers busy.
		sampleGrain = 4096
		consumers   = 4
	)
	ecfg := cfg
	if ecfg.cacheBytes == 0 && ecfg.cache <= 0 {
		ecfg.cache = autoCacheEntries
	}
	ctx := context.Background()
	factory := func() (pai.Sink, error) { return pai.NewBreakdownAccumulator(), nil }

	seqEng, err := newEngine(ecfg)
	if err != nil {
		return 0, err
	}
	ir, err := pai.NewIndexedColumnReader(bytes.NewReader(sample), int64(len(sample)))
	if err != nil {
		return 0, err
	}
	seqSink, _, err := seqEng.EvaluateIndexedColumns(ctx, ir, sampleGrain, 1, factory)
	if err != nil {
		return 0, err
	}
	want, err := seqSink.MarshalBinary()
	if err != nil {
		return 0, err
	}

	parEng, err := newEngine(ecfg)
	if err != nil {
		return 0, err
	}
	const minDuration = 200 * time.Millisecond
	records := 0
	start := time.Now()
	for records == 0 || time.Since(start) < minDuration {
		sink, counts, err := parEng.EvaluateIndexedColumns(ctx, ir, sampleGrain, consumers, factory)
		if err != nil {
			return 0, err
		}
		got, err := sink.MarshalBinary()
		if err != nil {
			return 0, err
		}
		if !bytes.Equal(got, want) {
			return 0, fmt.Errorf("parallel-file snapshot diverges from the one-consumer grid fold")
		}
		for _, c := range counts {
			records += c
		}
	}
	elapsed := time.Since(start)
	return float64(records) / elapsed.Seconds(), nil
}

// timeDecode runs one full-sample decode pass repeatedly until enough time
// has elapsed for a stable figure.
func timeDecode(pass func() (int, error)) (CodecStats, error) {
	const minDuration = 200 * time.Millisecond
	records := 0
	start := time.Now()
	for time.Since(start) < minDuration {
		n, err := pass()
		if err != nil {
			return CodecStats{}, err
		}
		records += n
	}
	elapsed := time.Since(start)
	if records == 0 {
		return CodecStats{}, fmt.Errorf("codec benchmark decoded no records")
	}
	return CodecStats{
		NsPerRecord:   float64(elapsed.Nanoseconds()) / float64(records),
		RecordsPerSec: float64(records) / elapsed.Seconds(),
	}, nil
}

// fidelity extracts the headline aggregates and their deltas vs the paper.
func fidelity(acc *pai.BreakdownAccumulator) (*Fidelity, error) {
	c, err := acc.Constitution()
	if err != nil {
		return nil, err
	}
	overall, err := acc.Overall(pai.CNodeLevel)
	if err != nil {
		return nil, err
	}
	p50, err := acc.StepTimeQuantile(0.50)
	if err != nil {
		return nil, err
	}
	p99, err := acc.StepTimeQuantile(0.99)
	if err != nil {
		return nil, err
	}
	fid := &Fidelity{
		ClassJobShare:   map[string]float64{},
		ClassCNodeShare: map[string]float64{},
		OverallCNode: map[string]float64{
			"data_io": overall[pai.CompDataIO],
			"weights": overall[pai.CompWeights],
			"compute": overall[pai.CompComputeFLOPs] + overall[pai.CompComputeMem],
		},
		MeanStepSec: acc.StepTime().Mean(),
		P50StepSec:  p50,
		P99StepSec:  p99,
	}
	for class, share := range c.JobShare {
		fid.ClassJobShare[class.String()] = share
	}
	for class, share := range c.CNodeShare {
		fid.ClassCNodeShare[class.String()] = share
	}
	fid.PaperAbsDelta = map[string]float64{
		"ps_cnode_share":  math.Abs(fid.ClassCNodeShare[pai.PSWorker.String()] - paperPSCNodeShare),
		"overall_weights": math.Abs(fid.OverallCNode["weights"] - paperOverallComm),
		"overall_compute": math.Abs(fid.OverallCNode["compute"] - paperOverallComput),
	}
	return fid, nil
}

// peakSampler polls the live heap on a fixed period until stopped.
type peakSampler struct {
	stopc chan struct{}
	donec chan struct{}
	peak  uint64
}

func newPeakSampler(period time.Duration) *peakSampler {
	s := &peakSampler{stopc: make(chan struct{}), donec: make(chan struct{})}
	go func() {
		defer close(s.donec)
		t := time.NewTicker(period)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > s.peak {
				s.peak = ms.HeapAlloc
			}
			select {
			case <-t.C:
			case <-s.stopc:
				return
			}
		}
	}()
	return s
}

func (s *peakSampler) stop() { close(s.stopc); <-s.donec }

// max reports the largest sampled live heap; valid after stop.
func (s *peakSampler) max() uint64 { return s.peak }
