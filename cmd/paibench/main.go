// Command paibench measures the streaming evaluation pipeline end to end:
// it generates a parameterized synthetic trace (10k to millions of jobs),
// streams it through a registered evaluation backend without ever
// materializing it, and emits a machine-readable result JSON — throughput,
// allocation rates, peak heap, and the aggregate fidelity of the streamed
// trace against the paper's Fig. 5 / Sec. III-D headline statistics.
//
// Usage:
//
//	paibench [-jobs N] [-seed S] [-backend name] [-par N] [-codec] [-o result.json]
//
// With -codec the jobs additionally round-trip through the NDJSON
// encoder/decoder over an in-process pipe, measuring the full
// decode→shard→evaluate→fold path a recorded trace would take.
//
// The result JSON doubles as the golden baseline for CI regression gating:
// BENCH_BASELINE.json at the repository root is a checked-in paibench
// result, and cmd/benchdiff fails the build when a run regresses against it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	pai "repro"
)

// Result is the machine-readable paibench output (schema "paibench/1").
type Result struct {
	Schema  string `json:"schema"`
	Jobs    int    `json:"jobs"`
	Seed    int64  `json:"seed"`
	Backend string `json:"backend"`
	Workers int    `json:"workers"`
	Codec   bool   `json:"codec"`

	ElapsedSec float64 `json:"elapsed_sec"`
	JobsPerSec float64 `json:"jobs_per_sec"`

	AllocsPerJob  float64 `json:"allocs_per_job"`
	BytesPerJob   float64 `json:"bytes_per_job"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`

	Fidelity Fidelity `json:"fidelity"`

	Note string `json:"note,omitempty"`
}

// Fidelity holds the streamed trace's collective aggregates next to the
// paper's published headline values, so a baseline diff catches both
// performance and statistical drift.
type Fidelity struct {
	ClassJobShare   map[string]float64 `json:"class_job_share"`
	ClassCNodeShare map[string]float64 `json:"class_cnode_share"`
	// OverallCNode maps data_io/weights/compute to the cNode-level overall
	// share (Sec. III-D reports weights 62%, compute 35%).
	OverallCNode map[string]float64 `json:"overall_cnode_level"`
	MeanStepSec  float64            `json:"mean_step_sec"`
	P50StepSec   float64            `json:"p50_step_sec"`
	P99StepSec   float64            `json:"p99_step_sec"`
	// PaperAbsDelta maps headline-stat name to |streamed - paper|:
	// ps_cnode_share (0.81), overall_weights (0.62), overall_compute (0.35).
	PaperAbsDelta map[string]float64 `json:"paper_abs_delta"`
}

// Paper headline references: Fig. 5b (PS/Worker cNode share ~81%) and
// Sec. III-D (cNode-level communication 62%, computation 35%).
const (
	paperPSCNodeShare  = 0.81
	paperOverallComm   = 0.62
	paperOverallComput = 0.35
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "paibench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("paibench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobs := fs.Int("jobs", 100000, "trace size to stream (10k-1M+)")
	seed := fs.Int64("seed", 1, "trace generation seed")
	backendName := fs.String("backend", "analytical",
		"evaluation backend ("+strings.Join(pai.Backends(), ", ")+")")
	par := fs.Int("par", 0, "evaluation worker-pool size (0 = GOMAXPROCS)")
	codec := fs.Bool("codec", false, "round-trip jobs through the NDJSON codec over a pipe")
	out := fs.String("o", "", "result JSON file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs < 1 {
		return fmt.Errorf("-jobs must be positive, got %d", *jobs)
	}

	opts := []pai.Option{pai.WithBackend(*backendName)}
	if *par > 0 {
		opts = append(opts, pai.WithParallelism(*par))
	}
	eng, err := pai.New(opts...)
	if err != nil {
		return err
	}

	p := pai.DefaultTraceParams()
	p.NumJobs = *jobs
	p.Seed = *seed

	res, err := measure(eng, p, *codec)
	if err != nil {
		return err
	}
	res.Backend = eng.Backend()
	res.Workers = eng.Parallelism()

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "paibench: %d jobs in %.2fs — %.0f jobs/sec, %.1f allocs/job, peak heap %.1f MiB\n",
		res.Jobs, res.ElapsedSec, res.JobsPerSec, res.AllocsPerJob,
		float64(res.PeakHeapBytes)/(1<<20))
	return nil
}

// measure streams the parameterized trace through the engine, sampling the
// heap as it goes, and assembles the result.
func measure(eng *pai.Engine, p pai.TraceParams, codec bool) (*Result, error) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// Sample peak live heap while the pipeline runs: with O(workers)
	// memory the peak is flat in the job count.
	peak := newPeakSampler(5 * time.Millisecond)

	start := time.Now()
	acc, n, err := stream(eng, p, codec)
	elapsed := time.Since(start)
	peak.stop()
	if err != nil {
		return nil, err
	}
	if n != p.NumJobs {
		return nil, fmt.Errorf("streamed %d of %d jobs", n, p.NumJobs)
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	fid, err := fidelity(acc)
	if err != nil {
		return nil, err
	}
	return &Result{
		Schema:        "paibench/1",
		Jobs:          n,
		Seed:          p.Seed,
		Codec:         codec,
		ElapsedSec:    elapsed.Seconds(),
		JobsPerSec:    float64(n) / elapsed.Seconds(),
		AllocsPerJob:  float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerJob:   float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		PeakHeapBytes: peak.max(),
		Fidelity:      *fid,
	}, nil
}

// stream runs the generator through the engine, either directly or through
// the NDJSON codec over an in-process pipe, folding into an accumulator.
func stream(eng *pai.Engine, p pai.TraceParams, codec bool) (*pai.BreakdownAccumulator, int, error) {
	src, err := pai.NewTraceSource(p)
	if err != nil {
		return nil, 0, err
	}
	ctx := context.Background()
	if !codec {
		acc, err := eng.StreamBreakdowns(ctx, src)
		if err != nil {
			return nil, 0, err
		}
		return acc, acc.N(), nil
	}

	// Codec mode: generator → NDJSON encoder → pipe → streaming decoder →
	// pipeline. The pipe bounds the in-flight bytes, so memory stays
	// O(workers) here too.
	pr, pw := io.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		enc := pai.NewTraceEncoder(pw)
		for {
			f, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				pw.CloseWithError(err)
				return
			}
			if err := enc.Encode(f); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.CloseWithError(enc.Flush())
	}()
	acc := pai.NewBreakdownAccumulator()
	n, err := eng.EvaluateStream(ctx, pr, func(r pai.StreamResult) error {
		return acc.Add(r.Job, r.Times)
	})
	pr.CloseWithError(err)
	wg.Wait()
	if err != nil {
		return nil, n, err
	}
	return acc, n, nil
}

// fidelity extracts the headline aggregates and their deltas vs the paper.
func fidelity(acc *pai.BreakdownAccumulator) (*Fidelity, error) {
	c, err := acc.Constitution()
	if err != nil {
		return nil, err
	}
	overall, err := acc.Overall(pai.CNodeLevel)
	if err != nil {
		return nil, err
	}
	p50, err := acc.StepTimeQuantile(0.50)
	if err != nil {
		return nil, err
	}
	p99, err := acc.StepTimeQuantile(0.99)
	if err != nil {
		return nil, err
	}
	fid := &Fidelity{
		ClassJobShare:   map[string]float64{},
		ClassCNodeShare: map[string]float64{},
		OverallCNode: map[string]float64{
			"data_io": overall[pai.CompDataIO],
			"weights": overall[pai.CompWeights],
			"compute": overall[pai.CompComputeFLOPs] + overall[pai.CompComputeMem],
		},
		MeanStepSec: acc.StepTime().Mean(),
		P50StepSec:  p50,
		P99StepSec:  p99,
	}
	for class, share := range c.JobShare {
		fid.ClassJobShare[class.String()] = share
	}
	for class, share := range c.CNodeShare {
		fid.ClassCNodeShare[class.String()] = share
	}
	fid.PaperAbsDelta = map[string]float64{
		"ps_cnode_share":  math.Abs(fid.ClassCNodeShare[pai.PSWorker.String()] - paperPSCNodeShare),
		"overall_weights": math.Abs(fid.OverallCNode["weights"] - paperOverallComm),
		"overall_compute": math.Abs(fid.OverallCNode["compute"] - paperOverallComput),
	}
	return fid, nil
}

// peakSampler polls the live heap on a fixed period until stopped.
type peakSampler struct {
	stopc chan struct{}
	donec chan struct{}
	peak  uint64
}

func newPeakSampler(period time.Duration) *peakSampler {
	s := &peakSampler{stopc: make(chan struct{}), donec: make(chan struct{})}
	go func() {
		defer close(s.donec)
		t := time.NewTicker(period)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > s.peak {
				s.peak = ms.HeapAlloc
			}
			select {
			case <-t.C:
			case <-s.stopc:
				return
			}
		}
	}()
	return s
}

func (s *peakSampler) stop() { close(s.stopc); <-s.donec }

// max reports the largest sampled live heap; valid after stop.
func (s *peakSampler) max() uint64 { return s.peak }
