package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	pai "repro"
)

// writeColbinTrace records a generated trace to a colbin file and returns
// its path. blockRecords keeps blocks small so CI-sized traces still yield
// multi-cell partition grids; omitIndex produces a legacy file without the
// seekable footer.
func writeColbinTrace(t *testing.T, jobs, distinct int, seed int64, blockRecords int, omitIndex bool) string {
	t.Helper()
	p := pai.DefaultTraceParams()
	p.Seed = seed
	p.NumJobs = jobs
	p.DistinctJobs = distinct
	src, err := pai.NewTraceSource(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.colbin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := pai.NewColumnWriterBlockRecords(f, blockRecords)
	if omitIndex {
		w.OmitIndex()
	}
	for {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestParFileMatchesOneReaderGrid pins the file-parallel acceptance
// property: -par-file 4 folds the same partition grid as -par-file 1, so
// every deterministic section of the result — fidelity, CDF sketches,
// projection — is identical (the underlying sink snapshots are
// byte-identical; the JSON sections are their rendering).
func TestParFileMatchesOneReaderGrid(t *testing.T) {
	trace := writeColbinTrace(t, 20000, 512, 7, 512, false)
	seq := runToFile(t, []string{"-trace", trace, "-par-file", "1", "-microshard", "2048", "-full"})
	par := runToFile(t, []string{"-trace", trace, "-par-file", "4", "-microshard", "2048", "-full"})
	if seq.Jobs != 20000 || par.Jobs != 20000 {
		t.Fatalf("jobs = %d (one reader) / %d (four readers), want 20000", seq.Jobs, par.Jobs)
	}
	if !reflect.DeepEqual(par.Fidelity, seq.Fidelity) {
		t.Errorf("fidelity differs:\npar-file 4: %+v\npar-file 1: %+v", par.Fidelity, seq.Fidelity)
	}
	if par.CDF == nil || seq.CDF == nil || !reflect.DeepEqual(*par.CDF, *seq.CDF) {
		t.Errorf("cdf section differs:\npar-file 4: %+v\npar-file 1: %+v", par.CDF, seq.CDF)
	}
	if par.Projection == nil || seq.Projection == nil || !reflect.DeepEqual(*par.Projection, *seq.Projection) {
		t.Errorf("projection section differs:\npar-file 4: %+v\npar-file 1: %+v", par.Projection, seq.Projection)
	}
	if par.JobsPerSecParallelFile <= 0 {
		t.Errorf("jobs_per_sec_parallel_file = %v, want > 0 on the indexed path", par.JobsPerSecParallelFile)
	}
	if par.TraceFile != trace {
		t.Errorf("trace_file = %q", par.TraceFile)
	}
}

// TestParFileFallsBackWithoutIndex: a colbin file written with OmitIndex
// must still evaluate under -par-file — sequential scan, a stderr note,
// and no jobs_per_sec_parallel_file claim.
func TestParFileFallsBackWithoutIndex(t *testing.T) {
	trace := writeColbinTrace(t, 5000, 256, 3, 512, true)
	path := filepath.Join(t.TempDir(), "result.json")
	var out, errw bytes.Buffer
	if err := run([]string{"-trace", trace, "-par-file", "2", "-o", path}, &out, &errw); err != nil {
		t.Fatalf("fallback run failed: %v\nstderr:\n%s", err, errw.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	if r.Jobs != 5000 {
		t.Errorf("jobs = %d, want 5000 delivered by the sequential fallback", r.Jobs)
	}
	if r.JobsPerSecParallelFile != 0 {
		t.Errorf("jobs_per_sec_parallel_file = %v on a fallback run, want 0", r.JobsPerSecParallelFile)
	}
	if log := errw.String(); !strings.Contains(log, "no block index") {
		t.Errorf("fallback left no note in the log:\n%s", log)
	}
}

// TestZeroConcurrencyMeansAllCPUs: -par 0 and -shards 0 resolve to
// runtime.NumCPU() instead of erroring, so scripts can say "saturate this
// machine" without probing its shape.
func TestZeroConcurrencyMeansAllCPUs(t *testing.T) {
	ncpu := runtime.NumCPU()
	r := runToFile(t, []string{"-jobs", "40000", "-shards", "0", "-par", "0"})
	if r.Shards != ncpu {
		t.Errorf("-shards 0 resolved to %d shards, want runtime.NumCPU() = %d", r.Shards, ncpu)
	}
	if r.Workers != ncpu {
		t.Errorf("-par 0 resolved to %d workers, want runtime.NumCPU() = %d", r.Workers, ncpu)
	}
	if r.Jobs != 40000 {
		t.Errorf("jobs = %d", r.Jobs)
	}
}

// TestTracePayloadRoundTrip: the work-stealing assignment payload must
// reconstitute the exact evaluation parameterization on the worker side.
func TestTracePayloadRoundTrip(t *testing.T) {
	cfg := config{
		tracePath: "/data/run.colbin", grain: 8192,
		cache: 16384, cacheBytes: 0, par: 3, backendName: "analytical",
	}
	got, err := parseTracePayload(encodeTracePayload(cfg))
	if err != nil {
		t.Fatal(err)
	}
	cfg.shardIndex, cfg.shards, cfg.full = -1, 1, true // worker-side framing, not payload state
	if got != cfg {
		t.Errorf("payload round trip:\ngot  %+v\nwant %+v", got, cfg)
	}
	for _, bad := range []string{
		"",
		"not-a-payload trace=x",
		coordTracePayloadVersion + " trace=x microshard=zero backend=analytical",
		coordTracePayloadVersion + " trace=x microshard=4096 backend=analytical mystery=1",
		coordTracePayloadVersion + " microshard=4096 backend=analytical",
	} {
		if _, err := parseTracePayload([]byte(bad)); err == nil {
			t.Errorf("parseTracePayload(%q) accepted", bad)
		}
	}
}

// TestParFileValidation pins the flag rules of the file-parallel and
// work-stealing modes.
func TestParFileValidation(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-par-file", "2"}, &out, &errw); err == nil {
		t.Error("-par-file without -trace accepted")
	}
	if err := run([]string{"-trace", "x", "-par-file", "-1"}, &out, &errw); err == nil {
		t.Error("negative -par-file accepted")
	}
	if err := run([]string{"-jobs", "1000", "-microshard", "0"}, &out, &errw); err == nil {
		t.Error("-microshard 0 accepted")
	}
	if err := run([]string{"-steal"}, &out, &errw); err == nil {
		t.Error("-steal without -worker accepted")
	}
	if err := run([]string{"-jobs", "1000", "-slow", "1"}, &out, &errw); err == nil {
		t.Error("-slow without -coordinate -trace accepted")
	}
	if err := run([]string{"-coordinate", ":0", "-trace", "x", "-workers", "1", "-chaos", "1"}, &out, &errw); err == nil {
		t.Error("-chaos in trace coordination accepted (stragglers use -slow)")
	}
	if err := run([]string{"-coordinate", ":0", "-trace", "x", "-workers", "1", "-slow", "2"}, &out, &errw); err == nil {
		t.Error("-slow beyond -workers accepted")
	}
	if err := run([]string{"-coordinate", ":0", "-trace", "a b.colbin", "-workers", "1"}, &out, &errw); err == nil {
		t.Error("trace path with whitespace accepted into the payload encoding")
	}
}

// TestCoordinateTraceMatchesParFile is the happy-path work-stealing e2e:
// two spawned range workers race over the micro-shard grid of a recorded
// trace, and the folded result must carry every deterministic section
// identical to the single-process -par-file run at the same grain.
func TestCoordinateTraceMatchesParFile(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	trace := writeColbinTrace(t, 24000, 512, 9, 512, false)
	coordPath := filepath.Join(t.TempDir(), "coord.json")
	var out, errw bytes.Buffer
	err := run([]string{
		"-trace", trace, "-microshard", "2048",
		"-coordinate", "127.0.0.1:0", "-workers", "2",
		"-shard-timeout", "30s", "-o", coordPath,
	}, &out, &errw)
	if err != nil {
		t.Fatalf("coordinate run: %v\nstderr:\n%s", err, errw.String())
	}
	var coordRes Result
	b, err := os.ReadFile(coordPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &coordRes); err != nil {
		t.Fatal(err)
	}

	single := runToFile(t, []string{"-trace", trace, "-par-file", "2", "-microshard", "2048", "-full"})

	if coordRes.Jobs != 24000 {
		t.Fatalf("coordinated jobs = %d, want 24000 (a cell was lost or double-counted)", coordRes.Jobs)
	}
	if !reflect.DeepEqual(coordRes.Fidelity, single.Fidelity) {
		t.Errorf("fidelity differs:\ncoordinated: %+v\nsingle: %+v", coordRes.Fidelity, single.Fidelity)
	}
	if coordRes.CDF == nil || single.CDF == nil || !reflect.DeepEqual(*coordRes.CDF, *single.CDF) {
		t.Errorf("cdf section differs:\ncoordinated: %+v\nsingle: %+v", coordRes.CDF, single.CDF)
	}
	if coordRes.Projection == nil || single.Projection == nil || !reflect.DeepEqual(*coordRes.Projection, *single.Projection) {
		t.Errorf("projection section differs:\ncoordinated: %+v\nsingle: %+v", coordRes.Projection, single.Projection)
	}
	if coordRes.MicroShards < 2 {
		t.Errorf("micro_shards = %d, want a multi-cell grid", coordRes.MicroShards)
	}
	if coordRes.CoordWorkers != 2 {
		t.Errorf("coord_workers = %d, want 2", coordRes.CoordWorkers)
	}
	if coordRes.MicroShardAssignments < 2 {
		t.Errorf("micro_shard_assignments = %d, want at least one range per worker", coordRes.MicroShardAssignments)
	}
}

// TestCoordinateTraceStealsFromStraggler is the steal-injection e2e: one
// of two spawned workers sleeps before every cell after its first, so the
// coordinator's per-cell deadline must re-split and steal its in-flight
// tail — and the merged result must still match the single-process
// -par-file run exactly.
func TestCoordinateTraceStealsFromStraggler(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes and waits out a straggler deadline")
	}
	trace := writeColbinTrace(t, 24000, 512, 11, 512, false)
	coordPath := filepath.Join(t.TempDir(), "coord.json")
	var out, errw bytes.Buffer
	err := run([]string{
		"-trace", trace, "-microshard", "2048",
		"-coordinate", "127.0.0.1:0", "-workers", "2", "-slow", "1",
		"-slow-delay", "20s", "-shard-timeout", "2s", "-retries", "6",
		"-o", coordPath,
	}, &out, &errw)
	if err != nil {
		t.Fatalf("steal run: %v\nstderr:\n%s", err, errw.String())
	}
	var coordRes Result
	b, err := os.ReadFile(coordPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &coordRes); err != nil {
		t.Fatal(err)
	}

	single := runToFile(t, []string{"-trace", trace, "-par-file", "2", "-microshard", "2048", "-full"})

	if coordRes.Jobs != 24000 {
		t.Fatalf("coordinated jobs = %d, want 24000 (stolen cells lost or double-counted)", coordRes.Jobs)
	}
	if coordRes.StolenCells < 1 {
		t.Errorf("stolen_cells = %d, want the straggler's tail stolen:\n%s", coordRes.StolenCells, errw.String())
	}
	if !reflect.DeepEqual(coordRes.Fidelity, single.Fidelity) {
		t.Errorf("fidelity differs:\ncoordinated: %+v\nsingle: %+v", coordRes.Fidelity, single.Fidelity)
	}
	if coordRes.CDF == nil || single.CDF == nil || !reflect.DeepEqual(*coordRes.CDF, *single.CDF) {
		t.Errorf("cdf section differs:\ncoordinated: %+v\nsingle: %+v", coordRes.CDF, single.CDF)
	}
	if coordRes.Projection == nil || single.Projection == nil || !reflect.DeepEqual(*coordRes.Projection, *single.Projection) {
		t.Errorf("projection section differs:\ncoordinated: %+v\nsingle: %+v", coordRes.Projection, single.Projection)
	}
}
