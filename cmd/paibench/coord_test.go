package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestMain lets this test binary stand in for the paibench executable:
// coordinate mode re-executes os.Executable() with -worker flags and the
// PAIBENCH_EXEC_WORKER marker, so when the marker is set we run the real
// CLI entry point instead of the test suite. That makes the coordinator
// e2e tests true multi-process runs — separate address spaces, real TCP,
// real kill -9-style worker death — inside plain `go test`.
func TestMain(m *testing.M) {
	if os.Getenv("PAIBENCH_EXEC_WORKER") == "1" {
		if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "paibench:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestCoordinateChaosMatchesSingleProcess is the failure-injection e2e: a
// coordinator spawns three worker processes, one of which dies mid-shard
// (exit 137, no goodbye), and the retried, redistributed run must still
// produce every deterministic section identical to the single-process
// sharded -full run.
func TestCoordinateChaosMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	dir := t.TempDir()
	coordPath := filepath.Join(dir, "coord.json")
	var out, errw bytes.Buffer
	err := run([]string{
		"-jobs", "6000", "-seed", "5", "-shards", "3",
		"-coordinate", "127.0.0.1:0", "-workers", "3", "-chaos", "1", "-fail-after", "200",
		"-shard-timeout", "30s", "-o", coordPath,
	}, &out, &errw)
	if err != nil {
		t.Fatalf("coordinate run: %v\nstderr:\n%s", err, errw.String())
	}
	var coordRes Result
	b, err := os.ReadFile(coordPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &coordRes); err != nil {
		t.Fatal(err)
	}

	single := runToFile(t, []string{"-jobs", "6000", "-seed", "5", "-shards", "3", "-full"})

	if coordRes.Jobs != 6000 {
		t.Fatalf("coordinated jobs = %d, want 6000 (a lost shard was not retried)", coordRes.Jobs)
	}
	if !reflect.DeepEqual(coordRes.Fidelity, single.Fidelity) {
		t.Errorf("fidelity differs:\ncoordinated: %+v\nsingle: %+v", coordRes.Fidelity, single.Fidelity)
	}
	if coordRes.CDF == nil || single.CDF == nil || !reflect.DeepEqual(*coordRes.CDF, *single.CDF) {
		t.Errorf("cdf section differs:\ncoordinated: %+v\nsingle: %+v", coordRes.CDF, single.CDF)
	}
	if coordRes.Projection == nil || single.Projection == nil || !reflect.DeepEqual(*coordRes.Projection, *single.Projection) {
		t.Errorf("projection section differs:\ncoordinated: %+v\nsingle: %+v", coordRes.Projection, single.Projection)
	}
	// The chaos worker must actually have died and cost a retry.
	if log := errw.String(); !strings.Contains(log, "requeueing") {
		t.Errorf("chaos worker death left no requeue in the log:\n%s", log)
	}
}

// TestCoordinateExternalWorkers: -workers 0 waits for connect-out workers,
// the two-machine path (exercised here with worker processes pointed at the
// coordinator's port).
func TestCoordinateExternalWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	// Pin the port first so the external workers have an address to dial:
	// run the coordinator on a listener we pick via a throwaway bind.
	dir := t.TempDir()
	coordPath := filepath.Join(dir, "coord.json")
	var out, errw bytes.Buffer
	// -workers 2 with no chaos doubles as the spawn-local happy path; the
	// connect-out wire protocol is identical (the spawned process uses
	// -worker itself).
	err := run([]string{
		"-jobs", "4000", "-seed", "2", "-shards", "2",
		"-coordinate", "127.0.0.1:0", "-workers", "2",
		"-shard-timeout", "30s", "-o", coordPath,
	}, &out, &errw)
	if err != nil {
		t.Fatalf("coordinate run: %v\nstderr:\n%s", err, errw.String())
	}
	single := runToFile(t, []string{"-jobs", "4000", "-seed", "2", "-shards", "2", "-full"})
	var coordRes Result
	b, err := os.ReadFile(coordPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &coordRes); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coordRes.Fidelity, single.Fidelity) {
		t.Errorf("fidelity differs:\ncoordinated: %+v\nsingle: %+v", coordRes.Fidelity, single.Fidelity)
	}
}

// TestMergeOrderIndependent pins the satellite fix: -merge sorts snapshots
// by their provenance shard index before folding, so handing it files in
// any order yields byte-identical result JSON.
func TestMergeOrderIndependent(t *testing.T) {
	dir := t.TempDir()
	s0 := filepath.Join(dir, "s0.snap")
	s1 := filepath.Join(dir, "s1.snap")
	s2 := filepath.Join(dir, "s2.snap")
	common := []string{"-jobs", "3000", "-seed", "4", "-shards", "3"}
	var out, errw bytes.Buffer
	for i, path := range []string{s0, s1, s2} {
		if err := run(append(common, "-shard-index", fmt.Sprint(i), "-emit-shard", path), &out, &errw); err != nil {
			t.Fatal(err)
		}
	}
	ordered := filepath.Join(dir, "ordered.json")
	shuffled := filepath.Join(dir, "shuffled.json")
	if err := run([]string{"-merge", "-seed", "4", "-o", ordered, s0, s1, s2}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-merge", "-seed", "4", "-o", shuffled, s2, s0, s1}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(ordered)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("merge output depends on argument order:\nordered:  %s\nshuffled: %s", a, b)
	}
}

// TestPayloadRoundTrip: the coordinator's assignment payload must
// reconstitute the exact run parameterization on the worker side.
func TestPayloadRoundTrip(t *testing.T) {
	cfg := config{
		jobs: 123456, seed: 9, shards: 7, distinct: 4096,
		cache: 16384, cacheBytes: 0, par: 3, codec: true,
		backendName: "analytical",
	}
	got, err := parsePayload(encodePayload(cfg))
	if err != nil {
		t.Fatal(err)
	}
	cfg.shardIndex, cfg.full = -1, true // worker-side framing, not payload state
	if got != cfg {
		t.Errorf("payload round trip:\ngot  %+v\nwant %+v", got, cfg)
	}
	for _, bad := range []string{
		"",
		"not-a-payload jobs=1",
		coordPayloadVersion + " jobs=zero",
		coordPayloadVersion + " mystery=1",
		coordPayloadVersion + " jobs=0 shards=1 backend=analytical",
	} {
		if _, err := parsePayload([]byte(bad)); err == nil {
			t.Errorf("parsePayload(%q) accepted", bad)
		}
	}
}

// TestNetworkModeValidation pins the new flag exclusions.
func TestNetworkModeValidation(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-worker", "localhost:1", "-merge"}, &out, &errw); err == nil {
		t.Error("-worker with -merge accepted")
	}
	if err := run([]string{"-coordinate", ":0", "-emit-shard", "x"}, &out, &errw); err == nil {
		t.Error("-coordinate with -emit-shard accepted")
	}
	if err := run([]string{"-coordinate", ":0", "-workers", "1", "-chaos", "2"}, &out, &errw); err == nil {
		t.Error("-chaos beyond -workers accepted")
	}
	if err := run([]string{"-coordinate", ":0", "-shard-index", "0"}, &out, &errw); err == nil {
		t.Error("-coordinate with -shard-index accepted")
	}
	if err := run([]string{"-worker", "localhost:1", "stray"}, &out, &errw); err == nil {
		t.Error("worker mode with positional arguments accepted")
	}
}

// TestMergeRejectsDuplicateShard: feeding -merge the same shard snapshot
// twice must error (at-most-once, like the network coordinator), not
// silently double-count the shard.
func TestMergeRejectsDuplicateShard(t *testing.T) {
	dir := t.TempDir()
	s0 := filepath.Join(dir, "s0.snap")
	s1 := filepath.Join(dir, "s1.snap")
	common := []string{"-jobs", "2000", "-seed", "3", "-shards", "2"}
	var out, errw bytes.Buffer
	if err := run(append(common, "-shard-index", "0", "-emit-shard", s0), &out, &errw); err != nil {
		t.Fatal(err)
	}
	if err := run(append(common, "-shard-index", "1", "-emit-shard", s1), &out, &errw); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-merge", "-seed", "3", s0, s0, s1}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "duplicate snapshot") {
		t.Errorf("duplicate shard snapshot accepted: %v", err)
	}
}

// TestRetriesValidation: -retries must be at least 1 in coordinate mode.
func TestRetriesValidation(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-coordinate", ":0", "-retries", "0"}, &out, &errw); err == nil {
		t.Error("-retries 0 accepted")
	}
}
