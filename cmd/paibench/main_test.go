package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func runToFile(t *testing.T, args []string) Result {
	t.Helper()
	path := filepath.Join(t.TempDir(), "result.json")
	var out, errw bytes.Buffer
	if err := run(append(args, "-o", path), &out, &errw); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("result is not valid JSON: %v", err)
	}
	return r
}

func TestResultSchema(t *testing.T) {
	r := runToFile(t, []string{"-jobs", "3000", "-seed", "7"})
	if r.Schema != "paibench/1" {
		t.Errorf("schema = %q", r.Schema)
	}
	if r.Jobs != 3000 || r.Seed != 7 {
		t.Errorf("jobs/seed = %d/%d", r.Jobs, r.Seed)
	}
	if r.Backend != "analytical" {
		t.Errorf("backend = %q", r.Backend)
	}
	if r.JobsPerSec <= 0 || r.ElapsedSec <= 0 {
		t.Errorf("throughput not measured: %v jobs/sec in %vs", r.JobsPerSec, r.ElapsedSec)
	}
	if r.PeakHeapBytes == 0 {
		t.Error("peak heap not sampled")
	}
	var jobShare, cNodeShare, overall float64
	for _, v := range r.Fidelity.ClassJobShare {
		jobShare += v
	}
	for _, v := range r.Fidelity.ClassCNodeShare {
		cNodeShare += v
	}
	for _, v := range r.Fidelity.OverallCNode {
		overall += v
	}
	for name, sum := range map[string]float64{
		"class_job_share": jobShare, "class_cnode_share": cNodeShare, "overall_cnode_level": overall,
	} {
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s sums to %v, want 1", name, sum)
		}
	}
	if len(r.Fidelity.PaperAbsDelta) != 3 {
		t.Errorf("paper deltas = %v", r.Fidelity.PaperAbsDelta)
	}
}

// TestCodecModeMatchesDirect checks the NDJSON round-trip pipeline folds the
// same aggregates as the direct generator path.
func TestCodecModeMatchesDirect(t *testing.T) {
	direct := runToFile(t, []string{"-jobs", "2000", "-seed", "5"})
	codec := runToFile(t, []string{"-jobs", "2000", "-seed", "5", "-codec"})
	if !codec.Codec || direct.Codec {
		t.Fatalf("codec flags: direct=%v codec=%v", direct.Codec, codec.Codec)
	}
	if d, c := direct.Fidelity.MeanStepSec, codec.Fidelity.MeanStepSec; math.Abs(d-c) > 1e-9*math.Abs(d) {
		t.Errorf("mean step: direct %v vs codec %v", d, c)
	}
	for class, d := range direct.Fidelity.ClassCNodeShare {
		if c := codec.Fidelity.ClassCNodeShare[class]; c != d {
			t.Errorf("cNode share[%s]: direct %v vs codec %v", class, d, c)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-jobs", "0"}, &out, &errw); err == nil {
		t.Error("expected error for zero jobs")
	}
	if err := run([]string{"-backend", "no-such"}, &out, &errw); err == nil {
		t.Error("expected error for unknown backend")
	}
	if err := run([]string{"-bogus"}, &out, &errw); err == nil {
		t.Error("expected error for unknown flag")
	}
}

// TestPeakHeapIndependentOfJobs is the allocation-bounded acceptance check:
// streaming 16x more jobs must not grow the live-heap peak materially,
// because the pipeline holds O(workers) chunks, never the trace.
func TestPeakHeapIndependentOfJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("streams 320k jobs")
	}
	small := runToFile(t, []string{"-jobs", "20000"})
	large := runToFile(t, []string{"-jobs", "320000"})
	// Allow generous slack for GC timing noise; an O(jobs) pipeline would
	// show ~16x growth here (the 320k trace alone is >80 MiB).
	limit := float64(small.PeakHeapBytes)*3 + 8<<20
	if float64(large.PeakHeapBytes) > limit {
		t.Errorf("peak heap grew with job count: %d bytes at 20k jobs vs %d at 320k (limit %.0f)",
			small.PeakHeapBytes, large.PeakHeapBytes, limit)
	}
}

// TestShardedCachedRun: multi-shard mode must deliver every job across the
// partitions, hit the defaulted result cache on its repetitive trace, and
// report per-shard throughput and codec speed.
func TestShardedCachedRun(t *testing.T) {
	r := runToFile(t, []string{"-jobs", "40000", "-seed", "3", "-shards", "4"})
	if r.Jobs != 40000 || r.Shards != 4 {
		t.Fatalf("jobs/shards = %d/%d", r.Jobs, r.Shards)
	}
	if r.DistinctJobs != autoDistinct || r.CacheEntries != autoCacheEntries {
		t.Errorf("multi-shard defaults not applied: distinct %d cache %d", r.DistinctJobs, r.CacheEntries)
	}
	if r.CacheHitRate <= 0 || r.CacheHits == 0 {
		t.Errorf("repetitive sharded run should hit the cache: %+v", r)
	}
	if r.CacheHits+r.CacheMisses < uint64(r.Jobs) {
		t.Errorf("hits %d + misses %d < %d jobs", r.CacheHits, r.CacheMisses, r.Jobs)
	}
	if len(r.ShardJobsPerSec) != 4 {
		t.Fatalf("shard throughput rows = %d", len(r.ShardJobsPerSec))
	}
	for i, tput := range r.ShardJobsPerSec {
		if tput <= 0 {
			t.Errorf("shard %d throughput %v", i, tput)
		}
	}
	if r.CodecNsPerRecord <= 0 || r.CodecRecordsPerSec <= 0 {
		t.Errorf("codec speed not measured: %v ns, %v rec/s", r.CodecNsPerRecord, r.CodecRecordsPerSec)
	}
}

// TestSingleShardDefaultsStayCold: the baseline configuration (one shard)
// must keep the pre-sharding cold path — fully distinct trace, no cache —
// so the golden baseline remains comparable across releases.
func TestSingleShardDefaultsStayCold(t *testing.T) {
	r := runToFile(t, []string{"-jobs", "2000", "-seed", "5"})
	if r.Shards != 1 || r.DistinctJobs != 0 || r.CacheEntries != 0 {
		t.Errorf("cold-path defaults drifted: shards %d distinct %d cache %d",
			r.Shards, r.DistinctJobs, r.CacheEntries)
	}
	if r.CacheHits != 0 || r.CacheMisses != 0 {
		t.Errorf("cache counters active without a cache: %+v", r)
	}
	if len(r.ShardJobsPerSec) != 0 {
		t.Errorf("single-shard run should not emit per-shard rows: %v", r.ShardJobsPerSec)
	}
}

// TestShardedFidelityMatchesUnsharded: the per-shard accumulators must fold
// into the same aggregates an unsharded pass over the same partitions
// produces (the merge is exact).
func TestShardedFidelityMatchesUnsharded(t *testing.T) {
	// Same partitions, forced distinct and uncached on both sides so only
	// the fold topology differs.
	sharded := runToFile(t, []string{"-jobs", "12000", "-seed", "2", "-shards", "3", "-distinct", "0", "-cache", "0"})
	shardedCached := runToFile(t, []string{"-jobs", "12000", "-seed", "2", "-shards", "3", "-distinct", "0", "-cache", "65536"})
	for name, pair := range map[string][2]map[string]float64{
		"class_job_share":     {sharded.Fidelity.ClassJobShare, shardedCached.Fidelity.ClassJobShare},
		"class_cnode_share":   {sharded.Fidelity.ClassCNodeShare, shardedCached.Fidelity.ClassCNodeShare},
		"overall_cnode_level": {sharded.Fidelity.OverallCNode, shardedCached.Fidelity.OverallCNode},
	} {
		for k, a := range pair[0] {
			if b := pair[1][k]; math.Abs(a-b) > 1e-12 {
				t.Errorf("%s[%s]: cached sharded %v vs uncached %v", name, k, b, a)
			}
		}
	}
	if sharded.Fidelity.P99StepSec != shardedCached.Fidelity.P99StepSec {
		t.Errorf("p99 drift under cache: %v vs %v", shardedCached.Fidelity.P99StepSec, sharded.Fidelity.P99StepSec)
	}
}

// TestEmitShardMergeMatchesSingleProcess drives the coordinator/worker
// flow end to end through run(): two worker invocations emit snapshot
// files, a merge invocation folds them, and every deterministic section
// must equal the single-process -full run over the same grid.
func TestEmitShardMergeMatchesSingleProcess(t *testing.T) {
	dir := t.TempDir()
	s0 := filepath.Join(dir, "s0.snap")
	s1 := filepath.Join(dir, "s1.snap")
	common := []string{"-jobs", "4000", "-seed", "5", "-shards", "2"}
	var out, errw bytes.Buffer
	if err := run(append(common, "-shard-index", "0", "-emit-shard", s0), &out, &errw); err != nil {
		t.Fatal(err)
	}
	if err := run(append(common, "-shard-index", "1", "-emit-shard", s1), &out, &errw); err != nil {
		t.Fatal(err)
	}

	mergedPath := filepath.Join(dir, "merged.json")
	if err := run([]string{"-merge", "-seed", "5", "-o", mergedPath, s0, s1}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	var merged Result
	b, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &merged); err != nil {
		t.Fatal(err)
	}

	single := runToFile(t, append(common, "-full"))

	if merged.Jobs != 4000 || single.Jobs != 4000 {
		t.Fatalf("jobs = %d (merged) / %d (single)", merged.Jobs, single.Jobs)
	}
	if !reflect.DeepEqual(merged.Fidelity, single.Fidelity) {
		t.Errorf("fidelity differs:\nmerged: %+v\nsingle: %+v", merged.Fidelity, single.Fidelity)
	}
	if merged.CDF == nil || single.CDF == nil || !reflect.DeepEqual(*merged.CDF, *single.CDF) {
		t.Errorf("cdf section differs:\nmerged: %+v\nsingle: %+v", merged.CDF, single.CDF)
	}
	if merged.Projection == nil || single.Projection == nil || !reflect.DeepEqual(*merged.Projection, *single.Projection) {
		t.Errorf("projection section differs:\nmerged: %+v\nsingle: %+v", merged.Projection, single.Projection)
	}
	if merged.Note == "" {
		t.Error("merged result carries no provenance note")
	}
}

// TestWorkerModeValidation pins the coordinator/worker flag rules.
func TestWorkerModeValidation(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-shard-index", "0"}, &out, &errw); err == nil {
		t.Error("-shard-index without -emit-shard accepted")
	}
	if err := run([]string{"-shards", "2", "-shard-index", "2", "-emit-shard", "x"}, &out, &errw); err == nil {
		t.Error("out-of-range -shard-index accepted")
	}
	if err := run([]string{"-merge", "-emit-shard", "x"}, &out, &errw); err == nil {
		t.Error("-merge with -emit-shard accepted")
	}
	if err := run([]string{"-merge"}, &out, &errw); err == nil {
		t.Error("-merge without snapshot files accepted")
	}
	if err := run([]string{"stray.snap"}, &out, &errw); err == nil {
		t.Error("stray positional arguments accepted without -merge")
	}
	if err := run([]string{"-merge", filepath.Join(t.TempDir(), "missing.snap")}, &out, &errw); err == nil {
		t.Error("missing snapshot file accepted")
	}
}

// TestMergeRejectsForeignShards: snapshots from runs with different
// parameters must refuse to merge instead of folding into a plausible but
// wrong report.
func TestMergeRejectsForeignShards(t *testing.T) {
	dir := t.TempDir()
	s0 := filepath.Join(dir, "s0.snap")
	s1 := filepath.Join(dir, "s1.snap")
	var out, errw bytes.Buffer
	if err := run([]string{"-jobs", "2000", "-seed", "1", "-shards", "2", "-shard-index", "0", "-emit-shard", s0}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	// Same grid position, different seed: a different run.
	if err := run([]string{"-jobs", "2000", "-seed", "9", "-shards", "2", "-shard-index", "1", "-emit-shard", s1}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-merge", s0, s1}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "different run") {
		t.Errorf("foreign shard merge not rejected: %v", err)
	}
}

// TestCacheBytesMode: -cache-bytes runs the adaptive cache and reports the
// byte-budget telemetry.
func TestCacheBytesMode(t *testing.T) {
	r := runToFile(t, []string{"-jobs", "4000", "-shards", "2", "-distinct", "512", "-cache-bytes", "262144"})
	if r.CacheTargetBytes != 262144 {
		t.Errorf("cache_target_bytes = %d", r.CacheTargetBytes)
	}
	if r.CacheAvgEntryBytes <= 0 {
		t.Error("no measured entry footprint in result")
	}
	if r.CacheHits == 0 {
		t.Error("repetitive multi-shard trace produced no cache hits")
	}
}
