package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	pai "repro"
)

// writeStampedColbinTrace records a Poisson-stamped trace to a colbin file —
// the input shape the replay smoke CI generates with tracegen -rate.
func writeStampedColbinTrace(t *testing.T, jobs int, ratePerHour float64) string {
	t.Helper()
	p := pai.DefaultTraceParams()
	p.NumJobs = jobs
	p.ArrivalRate = ratePerHour
	src, err := pai.NewTraceSource(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "stamped.colbin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := pai.NewColumnWriterBlockRecords(f, 512)
	for {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReplayMode: -replay emits a result whose replay section carries
// coherent fleet aggregates, and two runs write byte-identical snapshot
// files — at different -par values — which is the determinism check the CI
// smoke performs with cmp.
func TestReplayMode(t *testing.T) {
	trace := writeStampedColbinTrace(t, 5000, 72000)
	snapA := filepath.Join(t.TempDir(), "a.snap")
	snapB := filepath.Join(t.TempDir(), "b.snap")

	a := runToFile(t, []string{"-trace", trace, "-replay", "-servers", "32",
		"-straggler-frac", "0.1", "-par", "1", "-replay-snapshot", snapA})
	b := runToFile(t, []string{"-trace", trace, "-replay", "-servers", "32",
		"-straggler-frac", "0.1", "-par", "4", "-replay-snapshot", snapB})

	if a.Replay == nil {
		t.Fatal("-replay result carries no replay section")
	}
	r := a.Replay
	if r.Policy != "fifo" {
		t.Errorf("policy = %q, want the fifo default", r.Policy)
	}
	if r.Servers != 32 || r.GPUs != 32*8 {
		t.Errorf("capacity = %d servers / %d GPUs", r.Servers, r.GPUs)
	}
	if r.Submitted != 5000 || r.Submitted != r.Completed+r.Rejected {
		t.Errorf("admission counters don't add up: %+v", r)
	}
	if r.Stragglers == 0 {
		t.Error("straggler injection sampled nothing at fraction 0.1")
	}
	if r.Utilization < 0 || r.Utilization > 1 {
		t.Errorf("utilization = %v outside [0, 1]", r.Utilization)
	}
	if r.MakespanSec < r.HorizonSec {
		t.Errorf("makespan %v precedes the arrival horizon %v", r.MakespanSec, r.HorizonSec)
	}
	if r.QueueDelayP99 < r.QueueDelayP50 || r.QueueDelayP50 < 0 {
		t.Errorf("queue-delay quantiles inverted: p50 %v, p99 %v", r.QueueDelayP50, r.QueueDelayP99)
	}
	if a.Jobs != 5000 || a.Schema != "paibench/1" {
		t.Errorf("top-level result: jobs %d, schema %q", a.Jobs, a.Schema)
	}

	if b.Replay == nil || *b.Replay != *r {
		t.Errorf("replay sections differ across -par:\npar 1: %+v\npar 4: %+v", r, b.Replay)
	}
	sa, err := os.ReadFile(snapA)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := os.ReadFile(snapB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Error("replay snapshots differ across -par (determinism broken)")
	}
	// The snapshot decodes through the public registry into the three fleet
	// sinks.
	sink, err := pai.ReadSinkSnapshot(bytes.NewReader(sa))
	if err != nil {
		t.Fatal(err)
	}
	multi, ok := sink.(*pai.MultiSink)
	if !ok {
		t.Fatalf("snapshot decoded to %T, want *pai.MultiSink", sink)
	}
	if got := len(multi.Sinks()); got != 3 {
		t.Errorf("fleet snapshot carries %d sinks, want 3", got)
	}
}

// TestReplayModeFlagValidation: -replay requires -trace, composes with no
// other mode, and its satellite flags refuse to appear without it.
func TestReplayModeFlagValidation(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-replay"}, &out, &errw); err == nil {
		t.Error("-replay without -trace should fail")
	}
	if err := run([]string{"-replay", "-trace", "x.colbin", "-merge"}, &out, &errw); err == nil {
		t.Error("-replay with -merge should fail")
	}
	if err := run([]string{"-replay", "-trace", "x.colbin", "-full"}, &out, &errw); err == nil {
		t.Error("-replay with -full should fail")
	}
	if err := run([]string{"-jobs", "100", "-policy", "sjf"}, &out, &errw); err == nil {
		t.Error("-policy without -replay should fail")
	}
	if err := run([]string{"-jobs", "100", "-servers", "4"}, &out, &errw); err == nil {
		t.Error("-servers without -replay should fail")
	}
}

// TestReplayModeSJF: the -policy flag reaches the scheduler registry.
func TestReplayModeSJF(t *testing.T) {
	trace := writeStampedColbinTrace(t, 800, 72000)
	r := runToFile(t, []string{"-trace", trace, "-replay", "-servers", "16", "-policy", "sjf"})
	if r.Replay == nil || r.Replay.Policy != "sjf" {
		t.Fatalf("replay section policy = %+v, want sjf", r.Replay)
	}
	var out, errw bytes.Buffer
	if err := run([]string{"-trace", trace, "-replay", "-policy", "nope"}, &out, &errw); err == nil {
		t.Error("unknown -policy should fail")
	}
}
