package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Fig. 16", "EXT-1", "EXT-6"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-jobs", "300", "-only", "table1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "11 TFLOPs") {
		t.Errorf("Table I output wrong:\n%s", buf.String())
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-jobs", "300", "-only", "fig99"}, &buf); err == nil {
		t.Error("expected error for unknown artifact")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Error("expected error for unknown flag")
	}
}
