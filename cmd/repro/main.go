// Command repro regenerates every table and figure of the paper's
// evaluation from the reproduction's substrates.
//
// Usage:
//
//	repro [-jobs N] [-trace FILE] [-only "Fig. 9"] [-ext] [-list]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	pai "repro"
	"repro/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	fs.SetOutput(stdout)
	jobs := fs.Int("jobs", 20000, "synthetic trace size")
	tracePath := fs.String("trace", "", "evaluate a recorded trace instead of generating one (any registered codec, sniffed from the file's bytes)")
	only := fs.String("only", "", "regenerate a single artifact (e.g. 'Fig. 9' or 'table1')")
	ext := fs.Bool("ext", false, "also run the extension experiments (EXT-1..6)")
	list := fs.Bool("list", false, "list artifact ids and exit")
	backendName := fs.String("backend", "analytical",
		"evaluation backend ("+strings.Join(pai.Backends(), ", ")+")")
	replayPolicy := fs.String("replay-policy", "",
		"scheduling policy for the cluster-replay extension ("+strings.Join(pai.SchedulerPolicies(), ", ")+"; default fifo)")
	par := fs.Int("par", 0, "evaluation worker-pool size (0 = GOMAXPROCS)")
	showVersion := fs.Bool("version", false, "print build/version information and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.Get())
		return nil
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(pai.ExperimentIDs(), "\n"))
		fmt.Fprintln(stdout, strings.Join(pai.ExtensionIDs(), "\n"))
		return nil
	}

	p := pai.DefaultTraceParams()
	if *jobs > 0 {
		p.NumJobs = *jobs
	}
	var tr *pai.Trace
	var err error
	if *tracePath != "" {
		tr, err = loadTrace(*tracePath)
	} else {
		tr, err = pai.GenerateTrace(p)
	}
	if err != nil {
		return err
	}
	suite, err := pai.NewExperimentSuiteWithBackend(p.Config, tr, *backendName, *par)
	if err != nil {
		return err
	}
	suite.ReplayPolicy = *replayPolicy
	if *only != "" {
		a, err := suite.Run(*only)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "=== %s — %s ===\n%s\n", a.ID, a.Title, a.Text)
		return nil
	}
	arts, err := suite.RunAll()
	if err != nil {
		return err
	}
	for _, a := range arts {
		fmt.Fprintf(stdout, "=== %s — %s ===\n%s\n", a.ID, a.Title, a.Text)
	}
	if *ext {
		exts, err := suite.RunExtensions()
		if err != nil {
			return err
		}
		for _, a := range exts {
			fmt.Fprintf(stdout, "=== %s — %s ===\n%s\n", a.ID, a.Title, a.Text)
		}
	}
	return nil
}

// loadTrace materializes a recorded trace in any registered codec, sniffed
// from the file's leading bytes (the experiment suite needs the full trace
// in memory).
func loadTrace(path string) (*pai.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	src, err := pai.OpenTraceSource(f, pai.TraceFormatAuto)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	tr := &pai.Trace{}
	for {
		j, err := src.Next()
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		tr.Jobs = append(tr.Jobs, j)
	}
}
