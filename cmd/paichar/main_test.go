package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	pai "repro"
)

func TestRunSynthetic(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-jobs", "400"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Workload constitution", "Execution-time breakdown",
		"AllReduce-Local", "Hardware sweep for PS/Worker", "most sensitive resource"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFromTraceFile(t *testing.T) {
	p := pai.DefaultTraceParams()
	p.NumJobs = 200
	tr, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-class", "1w1g"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Hardware sweep for 1w1g") {
		t.Error("missing 1w1g sweep")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-trace", "/does/not/exist.json"}, &buf); err == nil {
		t.Error("expected error for missing trace")
	}
	if err := run([]string{"-jobs", "200", "-class", "Nope"}, &buf); err == nil {
		t.Error("expected error for unknown class")
	}
	if err := run([]string{"-jobs", "200", "-class", "AllReduce-Local"}, &buf); err == nil {
		t.Error("expected error for class with no jobs in trace")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("expected error for unknown flag")
	}
	if err := run([]string{"-jobs", "0"}, &buf); err == nil {
		t.Error("expected error for zero jobs")
	}
}

// TestRunMultiTraceShards: repeated -trace flags drain NDJSON shards
// concurrently and fold them into one characterization.
func TestRunMultiTraceShards(t *testing.T) {
	p := pai.DefaultTraceParams()
	p.NumJobs = 900
	tr, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths := []string{}
	third := len(tr.Jobs) / 3
	for i := 0; i < 3; i++ {
		path := filepath.Join(dir, fmt.Sprintf("shard%d.ndjson", i))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		part := &pai.Trace{Jobs: tr.Jobs[i*third : (i+1)*third]}
		if err := part.WriteNDJSON(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths = append(paths, path)
	}
	var buf bytes.Buffer
	args := []string{"-cache", "1024"}
	for _, p := range paths {
		args = append(args, "-trace", p)
	}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "900 jobs over 3 trace shards") {
		t.Errorf("missing sharded constitution header:\n%s", out)
	}
	if !strings.Contains(out, "shard 2: 300 jobs") {
		t.Errorf("missing per-shard counts:\n%s", out)
	}
	if !strings.Contains(out, "result cache:") {
		t.Errorf("missing cache stats line:\n%s", out)
	}
	// Streaming mode now covers every report section: CDF sketches,
	// the projection study, and the hardware sweep.
	if !strings.Contains(out, "Weights-traffic time fraction CDFs") {
		t.Errorf("missing CDF section:\n%s", out)
	}
	if !strings.Contains(out, "PS -> AllReduce-Local:") {
		t.Errorf("missing projection section:\n%s", out)
	}
	if !strings.Contains(out, "Hardware sweep for PS/Worker:") || !strings.Contains(out, "most sensitive resource:") {
		t.Errorf("missing hardware sweep section:\n%s", out)
	}
}

// TestStreamingMatchesInMemorySections: on the same trace, the streamed
// projection and sweep sections must render identically to the in-memory
// path.
func TestStreamingMatchesInMemorySections(t *testing.T) {
	p := pai.DefaultTraceParams()
	p.NumJobs = 800
	tr, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "trace.json")
	jf, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(jf); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	ndPath := filepath.Join(dir, "trace.ndjson")
	nf, err := os.Create(ndPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteNDJSON(nf); err != nil {
		t.Fatal(err)
	}
	nf.Close()

	var memOut, streamOut bytes.Buffer
	if err := run([]string{"-trace", jsonPath}, &memOut); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", ndPath}, &streamOut); err != nil {
		t.Fatal(err)
	}
	sectionLines := func(out string) []string {
		var keep []string
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "PS -> AllReduce-Local") ||
				strings.Contains(line, "most sensitive resource") ||
				strings.Contains(line, "Ethernet  :") {
				keep = append(keep, line)
			}
		}
		return keep
	}
	mem, stream := sectionLines(memOut.String()), sectionLines(streamOut.String())
	if len(mem) == 0 {
		t.Fatalf("no comparable sections in in-memory output:\n%s", memOut.String())
	}
	if !reflect.DeepEqual(mem, stream) {
		t.Errorf("streamed sections differ from in-memory:\nmem: %q\nstream: %q", mem, stream)
	}
}

// TestRunMultiTraceRejectsWholeDocument: sharded mode streams record
// codecs only; a whole-document JSON shard is rejected by sniffed content,
// not file extension (the extensions here are deliberately meaningless).
func TestRunMultiTraceRejectsWholeDocument(t *testing.T) {
	p := pai.DefaultTraceParams()
	p.NumJobs = 60
	tr, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, emit func(w io.Writer) error) string {
		t.Helper()
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := emit(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	nd := write("a.trace", tr.WriteNDJSON)
	doc := write("b.trace", tr.WriteJSON)
	var buf bytes.Buffer
	err = run([]string{"-trace", nd, "-trace", doc}, &buf)
	if err == nil || !strings.Contains(err.Error(), "whole-document JSON") {
		t.Errorf("want whole-document rejection, got %v", err)
	}
}

// TestRunColbinTraceStreams: a columnar trace is sniffed (no telling
// extension) and characterized through the streaming pipeline.
func TestRunColbinTraceStreams(t *testing.T) {
	p := pai.DefaultTraceParams()
	p.NumJobs = 500
	tr, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pai.NewTraceWriter(f, "colbin")
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if err := w.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	if err := run([]string{"-trace", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "500 jobs, streamed") {
		t.Errorf("colbin trace did not stream:\n%s", buf.String())
	}
}
