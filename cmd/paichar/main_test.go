package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	pai "repro"
)

func TestRunSynthetic(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-jobs", "400"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Workload constitution", "Execution-time breakdown",
		"AllReduce-Local", "Hardware sweep for PS/Worker", "most sensitive resource"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFromTraceFile(t *testing.T) {
	p := pai.DefaultTraceParams()
	p.NumJobs = 200
	tr, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-class", "1w1g"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Hardware sweep for 1w1g") {
		t.Error("missing 1w1g sweep")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-trace", "/does/not/exist.json"}, &buf); err == nil {
		t.Error("expected error for missing trace")
	}
	if err := run([]string{"-jobs", "200", "-class", "Nope"}, &buf); err == nil {
		t.Error("expected error for unknown class")
	}
	if err := run([]string{"-jobs", "200", "-class", "AllReduce-Local"}, &buf); err == nil {
		t.Error("expected error for class with no jobs in trace")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("expected error for unknown flag")
	}
	if err := run([]string{"-jobs", "0"}, &buf); err == nil {
		t.Error("expected error for zero jobs")
	}
}
