// Command paichar characterizes a cluster trace the way the paper's
// framework does: workload constitution, execution-time breakdowns at job
// and cNode level, component/hardware CDFs, the PS->AllReduce projection
// study, and the hardware sweep for a chosen class.
//
// Usage:
//
//	paichar [-trace FILE]... [-format auto|json|ndjson|colbin] [-jobs N] [-class PS/Worker]
//
// Without -trace a calibrated synthetic trace of -jobs jobs is generated.
// A trace file's codec is sniffed from its leading bytes (or forced with
// -format): record-stream codecs (ndjson, colbin) are streamed through the
// bounded pipeline instead of being materialized, so they can hold millions
// of jobs. Streaming mode covers every report section: the whole
// characterization — breakdown aggregates, CDF sketches, the projection
// summary, and the hardware sweep for -class — folds through one MultiSink
// in a single pass at fixed memory (CDFs are quantile sketches: exact at
// the q=0/1 boundaries, interior error under one bin, < 0.2% absolute for
// fractions).
//
// -trace may repeat: multiple record-stream traces are drained concurrently
// as shards, each by its own worker set into its own sink, and folded with
// the exact merge into one characterization (Engine.EvaluateSourcesInto).
// -cache N puts a content-keyed result cache in front of the backend
// (-cache-bytes N for an adaptive byte budget instead), which pays off on
// production-shaped traces where the same jobs recur. The cache covers the
// base evaluation only: the sweep section re-evaluates each swept job under
// every Table III grid point through reconfigured backends (concurrently,
// inside the sink), which the engine cache does not front.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	pai "repro"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/version"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paichar:", err)
		os.Exit(1)
	}
}

// traceList collects repeated -trace flags.
type traceList []string

func (t *traceList) String() string { return strings.Join(*t, ",") }
func (t *traceList) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("paichar", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var traces traceList
	fs.Var(&traces, "trace", "trace file (codec sniffed, or forced with -format); repeat for sharded multi-trace evaluation (record-stream codecs only)")
	format := fs.String("format", pai.TraceFormatAuto,
		fmt.Sprintf("trace codec for -trace files, one of %v (auto = sniff each file's leading bytes)", pai.TraceFormats()))
	jobs := fs.Int("jobs", 5000, "synthetic trace size when no -trace given")
	sweepClass := fs.String("class", "PS/Worker", "class for the hardware sweep panel")
	backendName := fs.String("backend", "analytical",
		"evaluation backend ("+strings.Join(pai.Backends(), ", ")+")")
	par := fs.Int("par", 0, "evaluation worker-pool size (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache", 0, "content-keyed result-cache entry budget (0 = off)")
	cacheBytes := fs.Int64("cache-bytes", 0, "content-keyed result-cache byte budget; adapts to the measured entry footprint (overrides -cache; 0 = off)")
	showVersion := fs.Bool("version", false, "print build/version information and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.Get())
		return nil
	}

	target, err := resolveClass(*sweepClass)
	if err != nil {
		return err
	}
	engOpts := engineOptions(*backendName, *par, *cacheEntries, *cacheBytes)

	var trace *pai.Trace
	if len(traces) > 0 {
		// Resolve each trace file's codec — by sniffing its leading bytes
		// unless -format forces one. Record-stream codecs feed the streaming
		// pipeline; a whole-document JSON trace takes the in-memory path
		// (and cannot shard, since it is not a record stream).
		srcs := make([]pai.JobSource, len(traces))
		for i, path := range traces {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			name, r := *format, io.Reader(f)
			if name == pai.TraceFormatAuto || name == "" {
				if name, r, err = pai.SniffTraceFormat(f); err != nil {
					return fmt.Errorf("%s: %w", path, err)
				}
			}
			if name == "json" {
				if len(traces) > 1 {
					return fmt.Errorf("multi-trace mode streams record codecs only; %s is whole-document JSON (convert it with tracegen -convert)", path)
				}
				if trace, err = pai.ReadTrace(r); err != nil {
					return err
				}
				break
			}
			if srcs[i], err = pai.OpenTraceSource(r, name); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
		}
		if trace == nil {
			return runStreaming(srcs, traces, engOpts, target, stdout)
		}
	}
	if trace == nil {
		p := pai.DefaultTraceParams()
		p.NumJobs = *jobs
		var err error
		trace, err = pai.GenerateTrace(p)
		if err != nil {
			return err
		}
	}

	eng, err := pai.New(engOpts...)
	if err != nil {
		return err
	}
	ctx := context.Background()

	// Constitution (Fig. 5).
	c, err := pai.Constitute(trace.Jobs)
	if err != nil {
		return err
	}
	if err := renderConstitution(stdout, "Workload constitution", c); err != nil {
		return err
	}

	// Breakdowns (Fig. 7).
	rows, err := eng.Breakdowns(ctx, trace.Jobs)
	if err != nil {
		return err
	}
	overall, err := eng.OverallBreakdown(ctx, trace.Jobs, pai.CNodeLevel)
	if err != nil {
		return err
	}
	if err := renderBreakdowns(stdout, rows, overall); err != nil {
		return err
	}
	fmt.Fprintln(stdout)

	// Projection (Fig. 9).
	ps := pai.FilterClass(trace.Jobs, pai.PSWorker)
	if len(ps) > 0 {
		results, err := eng.ProjectAll(ctx, ps, pai.ToAllReduceLocal)
		if err != nil {
			return err
		}
		sum, err := pai.SummarizeProjection(results)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "PS -> AllReduce-Local: %d jobs, %s gain throughput, mean node speedup %.2fx\n\n",
			sum.N, report.Pct(1-sum.FracThroughputNotSped), sum.MeanNodeSpeedup)
	}

	// Hardware sweep for the chosen class (Fig. 11 panel).
	subset := pai.FilterClass(trace.Jobs, target)
	if len(subset) == 0 {
		return fmt.Errorf("trace has no %s jobs", target)
	}
	panel, err := eng.HardwareSweep(ctx, subset, target.String())
	if err != nil {
		return err
	}
	return renderSweep(stdout, target, panel)
}

// resolveClass maps a class flag value to the workload class.
func resolveClass(name string) (pai.Class, error) {
	for _, class := range workload.AllClasses() {
		if class.String() == name {
			return class, nil
		}
	}
	return 0, fmt.Errorf("unknown class %q", name)
}

// engineOptions assembles the shared engine configuration of both paths.
func engineOptions(backendName string, par, cacheEntries int, cacheBytes int64) []pai.Option {
	opts := []pai.Option{
		pai.WithConfig(pai.BaselineConfig()),
		pai.WithBackend(backendName),
	}
	if par > 0 {
		opts = append(opts, pai.WithParallelism(par))
	}
	switch {
	case cacheBytes > 0:
		opts = append(opts, pai.WithCacheBytes(cacheBytes))
	case cacheEntries > 0:
		opts = append(opts, pai.WithCache(cacheEntries))
	}
	return opts
}

// renderSweep prints the Fig. 11 panel; shared by the in-memory and
// streaming paths so their output stays identical.
func renderSweep(stdout io.Writer, target pai.Class, panel pai.SweepPanel) error {
	fmt.Fprintf(stdout, "Hardware sweep for %s:\n", target)
	for _, s := range panel.Series {
		fmt.Fprintf(stdout, "  %-10s:", s.Resource)
		for _, pt := range s.Points {
			fmt.Fprintf(stdout, " x%.1f->%.3f", pt.Normalized, pt.MeanSpeedup)
		}
		fmt.Fprintln(stdout)
	}
	res, gain, err := panel.MostSensitiveResource()
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(stdout, "  most sensitive resource: %s (max mean speedup %.3f)\n", res, gain)
	return err
}

// renderConstitution prints the Fig. 5 composition table; shared by the
// in-memory and streaming paths so their output stays identical.
func renderConstitution(stdout io.Writer, title string, c pai.Constitution) error {
	t := &report.Table{Title: title,
		Headers: []string{"class", "jobs", "job share", "cNode share"}}
	for _, class := range []pai.Class{pai.OneWorkerOneGPU, pai.OneWorkerNGPU, pai.PSWorker} {
		t.AddRow(class.String(), fmt.Sprintf("%d", c.Jobs[class]),
			report.Pct(c.JobShare[class]), report.Pct(c.CNodeShare[class]))
	}
	return t.Render(stdout)
}

// renderBreakdowns prints the Fig. 7 averages table and the Sec. III-D
// cNode-level overall line.
func renderBreakdowns(stdout io.Writer, rows []pai.BreakdownRow, overall map[pai.Component]float64) error {
	bt := &report.Table{Title: "Execution-time breakdown (averages)",
		Headers: []string{"class", "level", "data I/O", "weights", "compute-bound", "memory-bound"}}
	for _, r := range rows {
		bt.AddRow(r.Class.String(), r.Level.String(),
			report.Pct(r.Share[core.CompDataIO]),
			report.Pct(r.Share[core.CompWeights]),
			report.Pct(r.Share[core.CompComputeFLOPs]),
			report.Pct(r.Share[core.CompComputeMem]))
	}
	if err := bt.Render(stdout); err != nil {
		return err
	}
	_, err := fmt.Fprintf(stdout, "cNode-level overall: weights %s, compute %s, data I/O %s\n",
		report.Pct(overall[pai.CompWeights]),
		report.Pct(overall[pai.CompComputeFLOPs]+overall[pai.CompComputeMem]),
		report.Pct(overall[pai.CompDataIO]))
	return err
}

// runStreaming characterizes one or more record-stream traces (NDJSON or
// colbin sources, already opened) through the streaming pipeline: traces
// are never materialized, so they can be arbitrarily large, and multiple
// traces drain concurrently as shards folded with the exact merge (columnar
// sources ride the block-granular path automatically). Every report section
// folds through one MultiSink in a single pass — breakdown aggregates, CDF
// sketches, the projection summary, and the hardware sweep for the chosen
// class.
func runStreaming(srcs []pai.JobSource, paths []string, engOpts []pai.Option, target pai.Class, stdout io.Writer) error {
	eng, err := pai.New(engOpts...)
	if err != nil {
		return err
	}
	factory := func() (pai.Sink, error) {
		report, err := eng.NewReportSink(pai.ToAllReduceLocal)
		if err != nil {
			return nil, err
		}
		sweep, err := eng.NewSweepSink(target)
		if err != nil {
			return nil, err
		}
		return pai.NewMultiSink(append(report.Sinks(), sweep)...), nil
	}
	sink, counts, err := eng.EvaluateSourcesInto(context.Background(), factory, srcs...)
	if err != nil {
		return err
	}
	ms := sink.(*pai.MultiSink)
	var (
		acc      *pai.BreakdownAccumulator
		cdfs     *pai.ComponentCDFSink
		hwCDFs   *pai.HardwareCDFSink
		projSink *pai.ProjectionSink
		sweep    *pai.SweepSink
	)
	for _, inner := range ms.Sinks() {
		switch s := inner.(type) {
		case *pai.BreakdownAccumulator:
			acc = s
		case *pai.ComponentCDFSink:
			cdfs = s
		case *pai.HardwareCDFSink:
			hwCDFs = s
		case *pai.ProjectionSink:
			projSink = s
		case *pai.SweepSink:
			sweep = s
		}
	}

	// Constitution (Fig. 5) and breakdowns (Fig. 7 / Sec. III-D).
	c, err := acc.Constitution()
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Workload constitution (%d jobs, streamed)", acc.N())
	if len(paths) > 1 {
		title = fmt.Sprintf("Workload constitution (%d jobs over %d trace shards, streamed)", acc.N(), len(paths))
	}
	if err := renderConstitution(stdout, title, c); err != nil {
		return err
	}
	overall, err := acc.Overall(pai.CNodeLevel)
	if err != nil {
		return err
	}
	if err := renderBreakdowns(stdout, acc.Rows(), overall); err != nil {
		return err
	}
	fmt.Fprintln(stdout)

	// CDF sketches (Fig. 8): the weights-traffic fraction per class plus
	// the all-workloads hardware attribution, job level.
	fmt.Fprintln(stdout, "Weights-traffic time fraction CDFs (job-level, sketched):")
	for _, class := range cdfs.Classes() {
		sk, err := cdfs.CDF(class, pai.JobLevel, pai.CompWeights)
		if err != nil {
			return err
		}
		if err := report.CDFSeries(stdout, "  "+class.String(), sk, nil); err != nil {
			return err
		}
	}
	for _, hw := range []pai.HardwareComponent{pai.HWEthernet, pai.HWGPUFLOPs} {
		sk, err := hwCDFs.CDF(pai.JobLevel, hw)
		if err != nil {
			return err
		}
		if err := report.CDFSeries(stdout, "  all workloads "+hw.String(), sk, nil); err != nil {
			return err
		}
	}
	fmt.Fprintln(stdout)

	// Projection (Fig. 9), streamed.
	if projSink.N() > 0 {
		sum, err := projSink.Summary()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "PS -> AllReduce-Local: %d jobs, %s gain throughput, mean node speedup %.2fx\n\n",
			sum.N, report.Pct(1-sum.FracThroughputNotSped), sum.MeanNodeSpeedup)
	}

	// Hardware sweep (Fig. 11 panel), streamed.
	if sweep.N() > 0 {
		panel, err := sweep.Panel(target.String())
		if err != nil {
			return err
		}
		if err := renderSweep(stdout, target, panel); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "(no %s jobs; hardware sweep skipped)\n", target)
	}

	p50, err := acc.StepTimeQuantile(0.5)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "step time: mean %.4fs, p50 %.4fs over %d jobs (%s backend, %d workers)\n",
		acc.StepTime().Mean(), p50, acc.N(), eng.Backend(), eng.Parallelism())
	if len(paths) > 1 {
		for i, path := range paths {
			fmt.Fprintf(stdout, "  shard %d: %d jobs from %s\n", i, counts[i], path)
		}
	}
	if st := eng.CacheStats(); st.Hits+st.Misses > 0 {
		fmt.Fprintf(stdout, "result cache: %.1f%% hit rate (%d hits, %d misses, %d resident, %d evicted)\n",
			st.HitRate()*100, st.Hits, st.Misses, st.Entries, st.Evictions)
	}
	return nil
}
