// Command paichar characterizes a cluster trace the way the paper's
// framework does: workload constitution, execution-time breakdowns at job
// and cNode level, the PS->AllReduce projection study, and the hardware
// sweep for a chosen class.
//
// Usage:
//
//	paichar [-trace trace.json|trace.ndjson]... [-jobs N] [-class PS/Worker]
//
// Without -trace a calibrated synthetic trace of -jobs jobs is generated.
// NDJSON traces (.ndjson/.jsonl, or -ndjson) are streamed through the
// bounded pipeline instead of being materialized, so they can hold millions
// of jobs; streaming mode reports the constitution and breakdown sections.
//
// -trace may repeat: multiple NDJSON traces are drained concurrently as
// shards, each by its own worker set into its own accumulator, and folded
// with the exact merge into one characterization (Engine.EvaluateSources).
// -cache N puts a content-keyed result cache in front of the backend, which
// pays off on production-shaped traces where the same jobs recur.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	pai "repro"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paichar:", err)
		os.Exit(1)
	}
}

// traceList collects repeated -trace flags.
type traceList []string

func (t *traceList) String() string { return strings.Join(*t, ",") }
func (t *traceList) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("paichar", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var traces traceList
	fs.Var(&traces, "trace", "trace file: whole-document JSON, or NDJSON (streamed; detected by .ndjson/.jsonl extension or -ndjson); repeat for sharded multi-trace evaluation (all NDJSON)")
	ndjson := fs.Bool("ndjson", false, "treat -trace as NDJSON and stream it (constitution + breakdowns only)")
	jobs := fs.Int("jobs", 5000, "synthetic trace size when no -trace given")
	sweepClass := fs.String("class", "PS/Worker", "class for the hardware sweep panel")
	backendName := fs.String("backend", "analytical",
		"evaluation backend ("+strings.Join(pai.Backends(), ", ")+")")
	par := fs.Int("par", 0, "evaluation worker-pool size (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache", 0, "content-keyed result-cache entry budget (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if len(traces) > 1 {
		for _, path := range traces {
			if !*ndjson && !pai.IsNDJSONTracePath(path) {
				return fmt.Errorf("multi-trace mode streams NDJSON only; %q is not (.ndjson/.jsonl or -ndjson)", path)
			}
		}
		return runStreaming(traces, *backendName, *par, *cacheEntries, stdout)
	}
	if len(traces) == 1 && (*ndjson || pai.IsNDJSONTracePath(traces[0])) {
		return runStreaming(traces, *backendName, *par, *cacheEntries, stdout)
	}

	var trace *pai.Trace
	if len(traces) == 1 {
		f, err := os.Open(traces[0])
		if err != nil {
			return err
		}
		defer f.Close()
		trace, err = pai.ReadTrace(f)
		if err != nil {
			return err
		}
	} else {
		p := pai.DefaultTraceParams()
		p.NumJobs = *jobs
		var err error
		trace, err = pai.GenerateTrace(p)
		if err != nil {
			return err
		}
	}

	opts := []pai.Option{
		pai.WithConfig(pai.BaselineConfig()),
		pai.WithBackend(*backendName),
	}
	if *par > 0 {
		opts = append(opts, pai.WithParallelism(*par))
	}
	if *cacheEntries > 0 {
		opts = append(opts, pai.WithCache(*cacheEntries))
	}
	eng, err := pai.New(opts...)
	if err != nil {
		return err
	}
	ctx := context.Background()

	// Constitution (Fig. 5).
	c, err := pai.Constitute(trace.Jobs)
	if err != nil {
		return err
	}
	if err := renderConstitution(stdout, "Workload constitution", c); err != nil {
		return err
	}

	// Breakdowns (Fig. 7).
	rows, err := eng.Breakdowns(ctx, trace.Jobs)
	if err != nil {
		return err
	}
	overall, err := eng.OverallBreakdown(ctx, trace.Jobs, pai.CNodeLevel)
	if err != nil {
		return err
	}
	if err := renderBreakdowns(stdout, rows, overall); err != nil {
		return err
	}
	fmt.Fprintln(stdout)

	// Projection (Fig. 9).
	ps := pai.FilterClass(trace.Jobs, pai.PSWorker)
	if len(ps) > 0 {
		results, err := eng.ProjectAll(ctx, ps, pai.ToAllReduceLocal)
		if err != nil {
			return err
		}
		sum, err := pai.SummarizeProjection(results)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "PS -> AllReduce-Local: %d jobs, %s gain throughput, mean node speedup %.2fx\n\n",
			sum.N, report.Pct(1-sum.FracThroughputNotSped), sum.MeanNodeSpeedup)
	}

	// Hardware sweep for the chosen class (Fig. 11 panel).
	var target pai.Class
	found := false
	for _, class := range workload.AllClasses() {
		if class.String() == *sweepClass {
			target, found = class, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown class %q", *sweepClass)
	}
	subset := pai.FilterClass(trace.Jobs, target)
	if len(subset) == 0 {
		return fmt.Errorf("trace has no %s jobs", target)
	}
	panel, err := eng.HardwareSweep(ctx, subset, target.String())
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "Hardware sweep for %s:\n", target)
	for _, s := range panel.Series {
		fmt.Fprintf(stdout, "  %-10s:", s.Resource)
		for _, pt := range s.Points {
			fmt.Fprintf(stdout, " x%.1f->%.3f", pt.Normalized, pt.MeanSpeedup)
		}
		fmt.Fprintln(stdout)
	}
	res, gain, err := panel.MostSensitiveResource()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "  most sensitive resource: %s (max mean speedup %.3f)\n", res, gain)
	return nil
}

// renderConstitution prints the Fig. 5 composition table; shared by the
// in-memory and streaming paths so their output stays identical.
func renderConstitution(stdout io.Writer, title string, c pai.Constitution) error {
	t := &report.Table{Title: title,
		Headers: []string{"class", "jobs", "job share", "cNode share"}}
	for _, class := range []pai.Class{pai.OneWorkerOneGPU, pai.OneWorkerNGPU, pai.PSWorker} {
		t.AddRow(class.String(), fmt.Sprintf("%d", c.Jobs[class]),
			report.Pct(c.JobShare[class]), report.Pct(c.CNodeShare[class]))
	}
	return t.Render(stdout)
}

// renderBreakdowns prints the Fig. 7 averages table and the Sec. III-D
// cNode-level overall line.
func renderBreakdowns(stdout io.Writer, rows []pai.BreakdownRow, overall map[pai.Component]float64) error {
	bt := &report.Table{Title: "Execution-time breakdown (averages)",
		Headers: []string{"class", "level", "data I/O", "weights", "compute-bound", "memory-bound"}}
	for _, r := range rows {
		bt.AddRow(r.Class.String(), r.Level.String(),
			report.Pct(r.Share[core.CompDataIO]),
			report.Pct(r.Share[core.CompWeights]),
			report.Pct(r.Share[core.CompComputeFLOPs]),
			report.Pct(r.Share[core.CompComputeMem]))
	}
	if err := bt.Render(stdout); err != nil {
		return err
	}
	_, err := fmt.Fprintf(stdout, "cNode-level overall: weights %s, compute %s, data I/O %s\n",
		report.Pct(overall[pai.CompWeights]),
		report.Pct(overall[pai.CompComputeFLOPs]+overall[pai.CompComputeMem]),
		report.Pct(overall[pai.CompDataIO]))
	return err
}

// runStreaming characterizes one or more NDJSON traces through the
// streaming pipeline: traces are never materialized, so they can be
// arbitrarily large, and multiple traces drain concurrently as shards
// folded with the exact merge. The projection and hardware-sweep sections
// need per-job feature access and are skipped.
func runStreaming(paths []string, backendName string, par, cacheEntries int, stdout io.Writer) error {
	srcs := make([]pai.JobSource, len(paths))
	for i, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		srcs[i] = pai.NewTraceDecoder(f)
	}

	opts := []pai.Option{
		pai.WithConfig(pai.BaselineConfig()),
		pai.WithBackend(backendName),
	}
	if par > 0 {
		opts = append(opts, pai.WithParallelism(par))
	}
	if cacheEntries > 0 {
		opts = append(opts, pai.WithCache(cacheEntries))
	}
	eng, err := pai.New(opts...)
	if err != nil {
		return err
	}
	acc, counts, err := eng.EvaluateSources(context.Background(), srcs...)
	if err != nil {
		return err
	}

	c, err := acc.Constitution()
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Workload constitution (%d jobs, streamed)", acc.N())
	if len(paths) > 1 {
		title = fmt.Sprintf("Workload constitution (%d jobs over %d trace shards, streamed)", acc.N(), len(paths))
	}
	if err := renderConstitution(stdout, title, c); err != nil {
		return err
	}
	overall, err := acc.Overall(pai.CNodeLevel)
	if err != nil {
		return err
	}
	if err := renderBreakdowns(stdout, acc.Rows(), overall); err != nil {
		return err
	}
	p50, err := acc.StepTimeQuantile(0.5)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "step time: mean %.4fs, p50 %.4fs over %d jobs (%s backend, %d workers)\n",
		acc.StepTime().Mean(), p50, acc.N(), eng.Backend(), eng.Parallelism())
	if len(paths) > 1 {
		for i, path := range paths {
			fmt.Fprintf(stdout, "  shard %d: %d jobs from %s\n", i, counts[i], path)
		}
	}
	if st := eng.CacheStats(); st.Hits+st.Misses > 0 {
		fmt.Fprintf(stdout, "result cache: %.1f%% hit rate (%d hits, %d misses, %d resident)\n",
			st.HitRate()*100, st.Hits, st.Misses, st.Entries)
	}
	fmt.Fprintln(stdout, "(projection and hardware-sweep sections need an in-memory trace; rerun with a whole-document JSON trace)")
	return nil
}
