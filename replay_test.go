package pai_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	pai "repro"
)

// stampedTrace generates a calibrated trace with Poisson arrival stamps.
func stampedTrace(t *testing.T, n int, ratePerHour float64) []pai.Features {
	t.Helper()
	p := pai.DefaultTraceParams()
	p.NumJobs = n
	p.ArrivalRate = ratePerHour
	tr, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Jobs
}

// encodeTrace writes jobs in the named codec and returns the file bytes.
func encodeTrace(t *testing.T, jobs []pai.Features, format string) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := pai.NewTraceWriterBlockRecords(&buf, format, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range jobs {
		if err := tw.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReplayInfiniteCapacityMatchesStreaming pins the API-redesign
// acceptance criterion: with capacity at least the trace's peak concurrency
// and the FIFO policy, replay dispatches the exact Add sequence the
// streaming evaluation path produces, so plain breakdown/CDF sink snapshots
// are byte-identical to Engine.StreamInto over the same records — from both
// the NDJSON and the columnar codec.
func TestReplayInfiniteCapacityMatchesStreaming(t *testing.T) {
	eng, err := pai.New()
	if err != nil {
		t.Fatal(err)
	}
	jobs := stampedTrace(t, 1200, 36000)
	ctx := context.Background()

	for _, format := range []string{"ndjson", "colbin"} {
		encoded := encodeTrace(t, jobs, format)

		streamed := pai.NewMultiSink(pai.NewBreakdownAccumulator(), pai.NewComponentCDFSink())
		src, err := pai.OpenTraceSource(bytes.NewReader(encoded), format)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.StreamInto(ctx, src, streamed); err != nil {
			t.Fatal(err)
		}

		replayed := pai.NewMultiSink(pai.NewBreakdownAccumulator(), pai.NewComponentCDFSink())
		src, err = pai.OpenTraceSource(bytes.NewReader(encoded), format)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.ReplayInto(ctx, src, replayed, pai.WithReplayServers(4096))
		if err != nil {
			t.Fatal(err)
		}
		if stats.Rejected != 0 {
			t.Fatalf("%s: %d rejections on an infinite-capacity replay", format, stats.Rejected)
		}
		if stats.Completed != len(jobs) {
			t.Fatalf("%s: completed %d of %d", format, stats.Completed, len(jobs))
		}
		if stats.MaxQueueDepth > 1 {
			t.Fatalf("%s: queueing engaged (depth %d) — capacity is not infinite for this trace", format, stats.MaxQueueDepth)
		}

		var want, got bytes.Buffer
		if err := pai.WriteSinkSnapshot(&want, streamed); err != nil {
			t.Fatal(err)
		}
		if err := pai.WriteSinkSnapshot(&got, replayed); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("%s: infinite-capacity replay sink state differs from StreamInto", format)
		}
	}
}

// TestReplayDeterministicAcrossEngines: a congested replay with stragglers
// produces byte-identical fleet snapshots from engines at parallelism 1 and
// 4 — the determinism contract the CI smoke gates with cmp.
func TestReplayDeterministicAcrossEngines(t *testing.T) {
	jobs := stampedTrace(t, 800, 360000)
	ctx := context.Background()

	snapshot := func(parallelism int) []byte {
		eng, err := pai.New(pai.WithParallelism(parallelism))
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Replay(ctx, pai.NewSliceJobSource(jobs),
			pai.WithReplayServers(16),
			pai.WithReplayStragglers(0.2, 3),
			pai.WithReplayStragglerSeed(11),
			pai.WithReplaySteps(50),
			pai.WithReplayUtilizationWindow(30),
		)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Completed == 0 {
			t.Fatal("nothing completed")
		}
		var buf bytes.Buffer
		if err := pai.WriteSinkSnapshot(&buf, res.Sinks); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	if !bytes.Equal(snapshot(1), snapshot(4)) {
		t.Error("replay snapshots differ across engine parallelism")
	}
}

// TestReplayResultSurface: Engine.Replay wires all three fleet sinks and the
// scalar stats coherently.
func TestReplayResultSurface(t *testing.T) {
	eng, err := pai.New()
	if err != nil {
		t.Fatal(err)
	}
	jobs := stampedTrace(t, 300, 36000)
	res, err := eng.Replay(context.Background(), pai.NewSliceJobSource(jobs))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Submitted != len(jobs) || st.Submitted != st.Completed+st.Rejected {
		t.Errorf("stats don't add up: %+v", st)
	}
	if st.Servers != pai.DefaultReplayServers {
		t.Errorf("servers = %d, want the %d default", st.Servers, pai.DefaultReplayServers)
	}
	if got := res.Counters.Total(); int(got.Completed) != st.Completed || int(got.Rejected) != st.Rejected {
		t.Errorf("counter sink disagrees with stats: %+v vs %+v", got, st)
	}
	if got := res.QueueDelay.Overall().Weight(); int(got) != st.Completed {
		t.Errorf("queue-delay population = %v, want %d", got, st.Completed)
	}
	if st.Utilization > 0 && res.Utilization.Peak() <= 0 {
		t.Error("utilization timeline empty despite occupancy")
	}
	if st.Utilization < 0 || st.Utilization > 1 {
		t.Errorf("utilization = %v outside [0, 1]", st.Utilization)
	}
}

// TestReplayOptionValidation: every functional option rejects out-of-domain
// values at Replay time.
func TestReplayOptionValidation(t *testing.T) {
	eng, err := pai.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	jobs := stampedTrace(t, 2, 36000)
	for name, opt := range map[string]pai.ReplayOption{
		"zero servers":         pai.WithReplayServers(0),
		"empty policy":         pai.WithReplayPolicy(""),
		"unknown policy":       pai.WithReplayPolicy("no-such-policy"),
		"negative queue limit": pai.WithReplayQueueLimit(-1),
		"fraction > 1":         pai.WithReplayStragglers(1.5, 2),
		"factor < 1":           pai.WithReplayStragglers(0.5, 0.5),
		"zero steps":           pai.WithReplaySteps(0),
		"nil steps func":       pai.WithReplayStepsFunc(nil),
		"zero window":          pai.WithReplayUtilizationWindow(0),
	} {
		if _, err := eng.Replay(ctx, pai.NewSliceJobSource(jobs), opt); err == nil {
			t.Errorf("%s: expected an option error", name)
		}
	}
}

// TestReplayUnstampedRefusedPublicly: the sentinel error crosses the public
// API and WithReplayUnstamped opts into batch replay.
func TestReplayUnstampedRefusedPublicly(t *testing.T) {
	eng, err := pai.New()
	if err != nil {
		t.Fatal(err)
	}
	p := pai.DefaultTraceParams()
	p.NumJobs = 10
	tr, err := pai.GenerateTrace(p) // no ArrivalRate: unstamped
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, err = eng.Replay(ctx, pai.NewSliceJobSource(tr.Jobs))
	if !errors.Is(err, pai.ErrNoArrivals) {
		t.Errorf("err = %v, want ErrNoArrivals", err)
	}
	res, err := eng.Replay(ctx, pai.NewSliceJobSource(tr.Jobs), pai.WithReplayUnstamped())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Completed+res.Stats.Rejected != 10 {
		t.Errorf("batch replay processed %d jobs, want 10", res.Stats.Completed+res.Stats.Rejected)
	}
}

func TestSchedulerPolicies(t *testing.T) {
	names := pai.SchedulerPolicies()
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	if !seen["fifo"] || !seen["sjf"] {
		t.Errorf("SchedulerPolicies() = %v, want fifo and sjf", names)
	}
}
