package pai_test

import (
	"bytes"
	"context"
	"testing"

	pai "repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	ctx := context.Background()
	eng, err := pai.New(pai.WithConfig(pai.BaselineConfig()))
	if err != nil {
		t.Fatal(err)
	}
	p := pai.DefaultTraceParams()
	p.NumJobs = 400
	trace, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	// Characterize.
	c, err := pai.Constitute(trace.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalJobs != 400 {
		t.Errorf("TotalJobs = %d, want 400", c.TotalJobs)
	}
	rows, err := eng.Breakdowns(ctx, trace.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no breakdown rows")
	}
	overall, err := eng.OverallBreakdown(ctx, trace.Jobs, pai.CNodeLevel)
	if err != nil {
		t.Fatal(err)
	}
	if overall[pai.CompWeights] <= 0 {
		t.Error("cNode-level weight share should be positive")
	}
	// Project.
	ps := pai.FilterClass(trace.Jobs, pai.PSWorker)
	results, err := eng.ProjectAll(ctx, ps, pai.ToAllReduceLocal)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := pai.SummarizeProjection(results)
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != len(ps) {
		t.Errorf("projection covered %d jobs, want %d", sum.N, len(ps))
	}
	// Sweep.
	panel, err := eng.HardwareSweep(ctx, ps, "PS/Worker")
	if err != nil {
		t.Fatal(err)
	}
	if len(panel.Series) != 4 {
		t.Errorf("sweep panel has %d series, want 4", len(panel.Series))
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	p := pai.DefaultTraceParams()
	p.NumJobs = 50
	trace, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := pai.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != 50 {
		t.Errorf("round trip lost jobs: %d", len(back.Jobs))
	}
}

func TestFacadeCaseStudies(t *testing.T) {
	if len(pai.CaseStudies()) != 6 || len(pai.CaseStudyNames()) != 6 {
		t.Error("expected six case studies")
	}
	cs, err := pai.LookupCaseStudy("GCN")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Features.Class != pai.PEARL {
		t.Error("GCN should deploy under PEARL")
	}
	if _, err := pai.LookupCaseStudy("nope"); err == nil {
		t.Error("expected error for unknown case study")
	}
}

func TestFacadeExperiments(t *testing.T) {
	suite, err := pai.NewExperimentSuite(300)
	if err != nil {
		t.Fatal(err)
	}
	a, err := suite.Run("Table I")
	if err != nil {
		t.Fatal(err)
	}
	if a.Text == "" {
		t.Error("empty artifact")
	}
	if len(pai.ExperimentIDs()) != 18 {
		t.Errorf("expected 18 artifacts, got %d", len(pai.ExperimentIDs()))
	}
	// Suite from an existing trace.
	p := pai.DefaultTraceParams()
	p.NumJobs = 100
	tr, err := pai.GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := pai.NewExperimentSuiteFromTrace(pai.BaselineConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Fig5(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeZooBreakdown(t *testing.T) {
	eng, err := pai.New(pai.WithConfig(pai.TestbedConfig()))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range pai.CaseStudyNames() {
		cs, err := pai.LookupCaseStudy(name)
		if err != nil {
			t.Fatal(err)
		}
		bd, err := eng.Evaluate(cs.Features)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bd.Total() <= 0 {
			t.Errorf("%s has non-positive step time", name)
		}
	}
}
