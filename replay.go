package pai

import (
	"context"
	"fmt"

	"repro/internal/analyze"
	"repro/internal/cluster"
	"repro/internal/replay"
	"repro/internal/sched"
)

// DefaultReplayServers is the cluster size Engine.Replay simulates when
// WithReplayServers is not given — a production-scale pod rather than the
// whole trace cluster, so queueing effects are visible at default settings.
const DefaultReplayServers = 128

// replayOptions collects the ReplayOption set for one run.
type replayOptions struct {
	servers        int
	policy         string
	queueLimit     int
	stragglerFrac  float64
	stragglerMult  float64
	stragglerSeed  int64
	steps          int
	stepsFn        func(index int, f Features) int
	allowUnstamped bool
	windowSec      float64
}

// ReplayOption configures one Engine.Replay / Engine.ReplayInto run.
type ReplayOption func(*replayOptions) error

// WithReplayServers sets the simulated cluster size in servers
// (DefaultReplayServers by default). GPUs per server and NVLink availability
// follow the engine's hardware configuration; derive an engine variant with
// WithConfig to change them.
func WithReplayServers(n int) ReplayOption {
	return func(o *replayOptions) error {
		if n <= 0 {
			return fmt.Errorf("pai: WithReplayServers(%d): need at least one server", n)
		}
		o.servers = n
		return nil
	}
}

// WithReplayPolicy selects a registered scheduling policy by name (see
// SchedulerPolicies; "fifo" by default).
func WithReplayPolicy(name string) ReplayOption {
	return func(o *replayOptions) error {
		if name == "" {
			return fmt.Errorf("pai: WithReplayPolicy with empty name")
		}
		o.policy = name
		return nil
	}
}

// WithReplayQueueLimit bounds admission: an arrival that finds n jobs
// already pending is rejected instead of queued. Zero (the default) removes
// the bound.
func WithReplayQueueLimit(n int) ReplayOption {
	return func(o *replayOptions) error {
		if n < 0 {
			return fmt.Errorf("pai: WithReplayQueueLimit(%d): limit must be >= 0", n)
		}
		o.queueLimit = n
		return nil
	}
}

// WithReplayStragglers injects stragglers: a deterministically sampled
// `fraction` of admitted jobs run `factor` times their predicted duration.
// Sampling keys on the submission index, so the straggler set is identical
// across runs and parallelism levels.
func WithReplayStragglers(fraction, factor float64) ReplayOption {
	return func(o *replayOptions) error {
		if fraction < 0 || fraction > 1 {
			return fmt.Errorf("pai: WithReplayStragglers: fraction %v outside [0,1]", fraction)
		}
		if factor < 1 {
			return fmt.Errorf("pai: WithReplayStragglers: factor %v must be >= 1", factor)
		}
		o.stragglerFrac, o.stragglerMult = fraction, factor
		return nil
	}
}

// WithReplayStragglerSeed decorrelates the straggler sample across runs
// that share a fraction (seed 0 by default).
func WithReplayStragglerSeed(seed int64) ReplayOption {
	return func(o *replayOptions) error {
		o.stragglerSeed = seed
		return nil
	}
}

// WithReplaySteps runs every job for n training steps (1 by default): the
// job's runtime is its predicted step time times n.
func WithReplaySteps(n int) ReplayOption {
	return func(o *replayOptions) error {
		if n <= 0 {
			return fmt.Errorf("pai: WithReplaySteps(%d): steps must be positive", n)
		}
		o.steps, o.stepsFn = n, nil
		return nil
	}
}

// WithReplayStepsFunc derives each job's step count from its stream index
// and feature record — for traces whose step counts live beside the trace.
// It overrides WithReplaySteps.
func WithReplayStepsFunc(fn func(index int, f Features) int) ReplayOption {
	return func(o *replayOptions) error {
		if fn == nil {
			return fmt.Errorf("pai: WithReplayStepsFunc with nil func")
		}
		o.stepsFn = fn
		return nil
	}
}

// WithReplayUnstamped accepts traces without arrival stamps as a deliberate
// batch replay (every job submitted at t=0) instead of failing with
// ErrNoArrivals.
func WithReplayUnstamped() ReplayOption {
	return func(o *replayOptions) error {
		o.allowUnstamped = true
		return nil
	}
}

// WithReplayUtilizationWindow sets the occupancy-timeline bucket width in
// seconds for the fleet UtilizationSink Engine.Replay builds (one hour by
// default). It has no effect on ReplayInto, where the caller owns the sink.
func WithReplayUtilizationWindow(sec float64) ReplayOption {
	return func(o *replayOptions) error {
		if sec <= 0 {
			return fmt.Errorf("pai: WithReplayUtilizationWindow(%v): window must be positive", sec)
		}
		o.windowSec = sec
		return nil
	}
}

// ReplayResult is Engine.Replay's return: the scalar fleet summary plus the
// filled fleet-level sinks.
type ReplayResult struct {
	// Stats is the scalar fleet summary.
	Stats ReplayStats
	// Sinks bundles the three fleet sinks in snapshot order (counters,
	// queue delay, utilization); snapshot it as one unit.
	Sinks *MultiSink
	// Counters tallies admissions, completions, rejections and stragglers,
	// in total and per class.
	Counters *ReplayCounterSink
	// QueueDelay holds the per-class queue-delay CDF sketches.
	QueueDelay *QueueDelaySink
	// Utilization holds the windowed GPU-occupancy timeline.
	Utilization *UtilizationSink
}

func buildReplayOptions(opts []ReplayOption) (replayOptions, error) {
	o := replayOptions{servers: DefaultReplayServers, steps: 1, windowSec: replay.DefaultUtilizationWindow}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return replayOptions{}, err
		}
	}
	return o, nil
}

func (o replayOptions) config(c *cluster.Cluster) replay.Config {
	cfg := replay.Config{
		Cluster:           c,
		Policy:            o.policy,
		QueueLimit:        o.queueLimit,
		StragglerFraction: o.stragglerFrac,
		StragglerFactor:   o.stragglerMult,
		StragglerSeed:     o.stragglerSeed,
		AllowUnstamped:    o.allowUnstamped,
	}
	switch {
	case o.stepsFn != nil:
		cfg.Steps = o.stepsFn
	case o.steps != 1:
		n := o.steps
		cfg.Steps = func(int, Features) int { return n }
	}
	return cfg
}

// ReplayInto replays every job from src through the discrete-event cluster
// scheduler, with per-step times predicted by the engine's backend (cache
// included when configured), and dispatches per-job outcomes into sink — a
// fleet-level OutcomeSink, a plain Sink (breakdowns, CDFs), or a MultiSink
// bundling both; nil discards outcomes. The trace must be arrival-stamped
// in nondecreasing order (ErrNoArrivals / ErrUnsortedArrivals otherwise;
// see WithReplayUnstamped). It returns the scalar fleet summary.
//
// A replay is deterministic: same trace + same options produce byte-identical
// sink snapshots regardless of the engine's parallelism. With capacity at
// least the trace's peak concurrency under FIFO, queueing never engages and
// plain sinks fill byte-identically to Engine.StreamInto over the same
// records.
func (e *Engine) ReplayInto(ctx context.Context, src JobSource, sink Sink, opts ...ReplayOption) (ReplayStats, error) {
	ev, err := e.evaluator()
	if err != nil {
		return ReplayStats{}, err
	}
	o, err := buildReplayOptions(opts)
	if err != nil {
		return ReplayStats{}, err
	}
	c, err := cluster.New(e.spec.Config, o.servers)
	if err != nil {
		return ReplayStats{}, err
	}
	return replay.Run(ctx, ev, e.parallelism, src, o.config(c), sink)
}

// Replay is ReplayInto with the standard fleet-level sink set built in: an
// admission/completion counter sink, per-class queue-delay CDF sketches,
// and a windowed GPU-occupancy timeline sized to the simulated capacity.
// The sinks come back filled (and bundled as one MultiSink for
// snapshotting) beside the scalar summary.
func (e *Engine) Replay(ctx context.Context, src JobSource, opts ...ReplayOption) (ReplayResult, error) {
	ev, err := e.evaluator()
	if err != nil {
		return ReplayResult{}, err
	}
	o, err := buildReplayOptions(opts)
	if err != nil {
		return ReplayResult{}, err
	}
	c, err := cluster.New(e.spec.Config, o.servers)
	if err != nil {
		return ReplayResult{}, err
	}
	util, err := replay.NewUtilizationSink(o.windowSec, c.NumGPUs())
	if err != nil {
		return ReplayResult{}, err
	}
	res := ReplayResult{
		Counters:    replay.NewCounterSink(),
		QueueDelay:  replay.NewQueueDelaySink(),
		Utilization: util,
	}
	res.Sinks = analyze.NewMultiSink(res.Counters, res.QueueDelay, res.Utilization)
	stats, err := replay.Run(ctx, ev, e.parallelism, src, o.config(c), res.Sinks)
	if err != nil {
		return ReplayResult{}, err
	}
	res.Stats = stats
	return res, nil
}

// SchedulerPolicies lists the registered replay scheduling policy names,
// sorted ("fifo", "sjf").
func SchedulerPolicies() []string { return sched.PolicyNames() }
