package pai_test

import (
	"fmt"
	"log"

	pai "repro"
)

// Example demonstrates the analytical model on a single PS/Worker job: the
// Sec. II-B breakdown, the Eq. 2 throughput and the bottleneck.
func Example() {
	model, err := pai.NewModel(pai.BaselineConfig())
	if err != nil {
		log.Fatal(err)
	}
	job := pai.Features{
		Name: "reco", Class: pai.PSWorker, CNodes: 16, BatchSize: 512,
		FLOPs: 0.4e12, MemAccessBytes: 12e9, InputBytes: 80e6,
		DenseWeightBytes: 1.5e9, WeightTrafficBytes: 2.2e9,
	}
	bd, err := model.Breakdown(job)
	if err != nil {
		log.Fatal(err)
	}
	hw, frac, err := model.Bottleneck(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step %.3fs, weights %.3fs, bottleneck %s (%.0f%%)\n",
		bd.Total(), bd.Weights, hw, frac*100)
	// Output:
	// step 1.401s, weights 1.320s, bottleneck Ethernet (72%)
}

// ExampleNewProjector shows the Fig. 9 projection of a communication-bound
// PS job to AllReduce-Local: the Eq. 3 arithmetic gives exactly 21x on the
// weight-communication time.
func ExampleNewProjector() {
	model, err := pai.NewModel(pai.BaselineConfig())
	if err != nil {
		log.Fatal(err)
	}
	pr, err := pai.NewProjector(model)
	if err != nil {
		log.Fatal(err)
	}
	// A purely communication-bound job: node speedup hits the Eq. 3 bound.
	job := pai.Features{
		Name: "comm-bound", Class: pai.PSWorker, CNodes: 64, BatchSize: 32,
		FLOPs: 1e9, MemAccessBytes: 1e6, InputBytes: 1e3,
		DenseWeightBytes: 1e9, WeightTrafficBytes: 100e9,
	}
	r, err := pr.Project(job, pai.ToAllReduceLocal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weight-time ratio %.1fx, cNodes %d -> %d\n",
		r.OriginalTimes.Weights/r.ProjectedTimes.Weights,
		r.Original.CNodes, r.Projected.CNodes)
	// Output:
	// weight-time ratio 21.0x, cNodes 64 -> 8
}

// ExampleGenerateTrace characterizes a small synthetic trace at the cNode
// level, recovering the paper's headline: weight/gradient communication
// dominates.
func ExampleGenerateTrace() {
	p := pai.DefaultTraceParams()
	p.NumJobs = 2000
	trace, err := pai.GenerateTrace(p)
	if err != nil {
		log.Fatal(err)
	}
	model, err := pai.NewModel(pai.BaselineConfig())
	if err != nil {
		log.Fatal(err)
	}
	overall, err := pai.OverallBreakdown(model, trace.Jobs, pai.CNodeLevel)
	if err != nil {
		log.Fatal(err)
	}
	comm := overall[pai.CompWeights]
	compute := overall[pai.CompComputeFLOPs] + overall[pai.CompComputeMem]
	fmt.Printf("communication dominates: %v\n", comm > compute)
	// Output:
	// communication dominates: true
}
