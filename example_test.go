package pai_test

import (
	"context"
	"fmt"
	"log"

	pai "repro"
)

// Example demonstrates the Engine on a single PS/Worker job: the Sec. II-B
// breakdown, the Eq. 2 throughput and the bottleneck.
func Example() {
	eng, err := pai.New(pai.WithConfig(pai.BaselineConfig()))
	if err != nil {
		log.Fatal(err)
	}
	job := pai.Features{
		Name: "reco", Class: pai.PSWorker, CNodes: 16, BatchSize: 512,
		FLOPs: 0.4e12, MemAccessBytes: 12e9, InputBytes: 80e6,
		DenseWeightBytes: 1.5e9, WeightTrafficBytes: 2.2e9,
	}
	bd, err := eng.Evaluate(job)
	if err != nil {
		log.Fatal(err)
	}
	hw, frac, err := eng.Bottleneck(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step %.3fs, weights %.3fs, bottleneck %s (%.0f%%)\n",
		bd.Total(), bd.Weights, hw, frac*100)
	// Output:
	// step 1.401s, weights 1.320s, bottleneck Ethernet (72%)
}

// ExampleNew mirrors the package comment's typical use: build a configured
// Engine once, then batch-evaluate a whole synthetic trace through its
// worker pool.
func ExampleNew() {
	eng, _ := pai.New(pai.WithConfig(pai.BaselineConfig()))
	trace, _ := pai.GenerateTrace(pai.DefaultTraceParams())
	times, _ := eng.EvaluateBatch(context.Background(), trace.Jobs)
	fmt.Printf("first job: %.3fs\n", times[0].Total())
	// Output:
	// first job: 0.967s
}

// ExampleEngine_Project shows the Fig. 9 projection of a communication-bound
// PS job to AllReduce-Local: the Eq. 3 arithmetic gives exactly 21x on the
// weight-communication time.
func ExampleEngine_Project() {
	eng, err := pai.New()
	if err != nil {
		log.Fatal(err)
	}
	// A purely communication-bound job: node speedup hits the Eq. 3 bound.
	job := pai.Features{
		Name: "comm-bound", Class: pai.PSWorker, CNodes: 64, BatchSize: 32,
		FLOPs: 1e9, MemAccessBytes: 1e6, InputBytes: 1e3,
		DenseWeightBytes: 1e9, WeightTrafficBytes: 100e9,
	}
	r, err := eng.Project(job, pai.ToAllReduceLocal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weight-time ratio %.1fx, cNodes %d -> %d\n",
		r.OriginalTimes.Weights/r.ProjectedTimes.Weights,
		r.Original.CNodes, r.Projected.CNodes)
	// Output:
	// weight-time ratio 21.0x, cNodes 64 -> 8
}

// ExampleEngine_OverallBreakdown characterizes a small synthetic trace at
// the cNode level, recovering the paper's headline: weight/gradient
// communication dominates.
func ExampleEngine_OverallBreakdown() {
	p := pai.DefaultTraceParams()
	p.NumJobs = 2000
	trace, err := pai.GenerateTrace(p)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := pai.New(pai.WithParallelism(4))
	if err != nil {
		log.Fatal(err)
	}
	overall, err := eng.OverallBreakdown(context.Background(), trace.Jobs, pai.CNodeLevel)
	if err != nil {
		log.Fatal(err)
	}
	comm := overall[pai.CompWeights]
	compute := overall[pai.CompComputeFLOPs] + overall[pai.CompComputeMem]
	fmt.Printf("communication dominates: %v\n", comm > compute)
	// Output:
	// communication dominates: true
}
